//===- IntegerRange.cpp - Integer-range dataflow analysis -------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/IntegerRange.h"

#include "dialect/Arith.h"
#include "dialect/MemRef.h"
#include "dialect/SYCL.h"

#include <algorithm>
#include <limits>

using namespace smlir;

//===----------------------------------------------------------------------===//
// IntRange lattice
//===----------------------------------------------------------------------===//

static constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
static constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

IntRange IntRange::top() { return range(kMin, kMax); }

IntRange IntRange::range(int64_t Lo, int64_t Hi) {
  IntRange R;
  if (Lo > Hi)
    return R;
  R.Bottom = false;
  R.Min = Lo;
  R.Max = Hi;
  return R;
}

bool IntRange::isTop() const { return !Bottom && Min == kMin && Max == kMax; }

bool IntRange::join(const IntRange &Other) {
  if (Other.Bottom)
    return false;
  if (Bottom) {
    *this = Other;
    return true;
  }
  bool Changed = false;
  if (Other.Min < Min) {
    Min = Other.Min;
    Changed = true;
  }
  if (Other.Max > Max) {
    Max = Other.Max;
    Changed = true;
  }
  return Changed;
}

bool IntRange::operator==(const IntRange &Other) const {
  if (Bottom || Other.Bottom)
    return Bottom == Other.Bottom;
  return Min == Other.Min && Max == Other.Max;
}

/// Clamps a 128-bit intermediate into the saturating int64 domain.
static int64_t saturate(__int128 V) {
  if (V < static_cast<__int128>(kMin))
    return kMin;
  if (V > static_cast<__int128>(kMax))
    return kMax;
  return static_cast<int64_t>(V);
}

namespace smlir {

IntRange addRanges(const IntRange &A, const IntRange &B) {
  if (A.Bottom || B.Bottom)
    return IntRange();
  return IntRange::range(saturate((__int128)A.Min + B.Min),
                         saturate((__int128)A.Max + B.Max));
}

IntRange subRanges(const IntRange &A, const IntRange &B) {
  if (A.Bottom || B.Bottom)
    return IntRange();
  return IntRange::range(saturate((__int128)A.Min - B.Max),
                         saturate((__int128)A.Max - B.Min));
}

IntRange mulRanges(const IntRange &A, const IntRange &B) {
  if (A.Bottom || B.Bottom)
    return IntRange();
  __int128 Cands[4] = {(__int128)A.Min * B.Min, (__int128)A.Min * B.Max,
                       (__int128)A.Max * B.Min, (__int128)A.Max * B.Max};
  __int128 Lo = Cands[0], Hi = Cands[0];
  for (__int128 C : Cands) {
    Lo = std::min(Lo, C);
    Hi = std::max(Hi, C);
  }
  return IntRange::range(saturate(Lo), saturate(Hi));
}

IntRange divRanges(const IntRange &A, const IntRange &B) {
  if (A.Bottom || B.Bottom)
    return IntRange();
  if (B.Min <= 0)
    return IntRange::top(); // Possible zero/negative divisor.
  int64_t Cands[4] = {A.Min / B.Min, A.Min / B.Max, A.Max / B.Min,
                      A.Max / B.Max};
  return IntRange::range(*std::min_element(Cands, Cands + 4),
                         *std::max_element(Cands, Cands + 4));
}

IntRange remRanges(const IntRange &A, const IntRange &B) {
  if (A.Bottom || B.Bottom)
    return IntRange();
  if (B.Min <= 0)
    return IntRange::top(); // Possible zero/negative divisor.
  // C-style signed remainder: the result has the dividend's sign and
  // magnitude below the divisor. The non-negative-dividend case keeps the
  // result in [0, divisor), which is what makes the fuzzer's
  // `((x remsi n) addi n) remsi n` wrap-around idiom provably in-bounds.
  int64_t Bound = B.Max - 1;
  if (A.Min >= 0)
    return IntRange::range(0, std::min(A.Max, Bound));
  return IntRange::range(std::max(A.Min, -Bound), std::min(std::max(A.Max,
                         (int64_t)0), Bound));
}

IntRange minRanges(const IntRange &A, const IntRange &B) {
  if (A.Bottom || B.Bottom)
    return IntRange();
  return IntRange::range(std::min(A.Min, B.Min), std::min(A.Max, B.Max));
}

IntRange maxRanges(const IntRange &A, const IntRange &B) {
  if (A.Bottom || B.Bottom)
    return IntRange();
  return IntRange::range(std::max(A.Min, B.Min), std::max(A.Max, B.Max));
}

} // namespace smlir

//===----------------------------------------------------------------------===//
// Spill-cell collection
//===----------------------------------------------------------------------===//

/// The linearized constant cell index of an access, or nullopt when any
/// index is non-constant or outside the (static) alloca shape.
static std::optional<int64_t>
constantCellIndex(const std::vector<Value> &Indices, MemRefType Ty) {
  if (Indices.size() != (size_t)Ty.getRank())
    return std::nullopt;
  int64_t Linear = 0;
  for (size_t D = 0; D != Indices.size(); ++D) {
    std::optional<int64_t> C = getConstantIntValue(Indices[D]);
    int64_t Extent = Ty.getShape()[D];
    if (!C || Extent == MemRefType::kDynamic || *C < 0 || *C >= Extent)
      return std::nullopt;
    Linear = Linear * Extent + *C;
  }
  return Linear;
}

void IntegerRangeAnalysis::collectSpillCells(Operation *Root) {
  Root->walk([&](Operation *Op) {
    auto Alloca = memref::AllocaOp::dyn_cast(Op);
    if (!Alloca)
      return;
    MemRefType Ty = Alloca.getType();
    if (Ty.getMemorySpace() != MemorySpace::Private &&
        Ty.getMemorySpace() != MemorySpace::Local)
      return;
    Value Mem = Op->getResult(0);
    std::map<int64_t, Cell> Cells;
    for (OpOperand *Use : Mem.getUses()) {
      Operation *User = Use->getOwner();
      const std::string &Name = User->getName().getStringRef();
      bool IsLoad = Name == memref::LoadOp::getOperationName() ||
                    Name == affine::AffineLoadOp::getOperationName();
      bool IsStore = Name == memref::StoreOp::getOperationName() ||
                     Name == affine::AffineStoreOp::getOperationName();
      // Any other use — subview, call, yield, or being the *stored value*
      // of a store — lets the memory escape: give up on the alloca.
      if (!IsLoad && !IsStore)
        return;
      unsigned MemIdx = IsStore ? 1 : 0;
      if (Use->getOperandNumber() != MemIdx)
        return;
      const std::vector<Value> UserOps = User->getOperands();
      std::vector<Value> Indices(UserOps.begin() + MemIdx + 1,
                                 UserOps.end());
      std::optional<int64_t> Cell = constantCellIndex(Indices, Ty);
      if (!Cell)
        return;
      (IsStore ? Cells[*Cell].Stores : Cells[*Cell].Loads).push_back(User);
    }
    Spills[Mem.getImpl()] = std::move(Cells);
  });
}

//===----------------------------------------------------------------------===//
// IntegerRangeAnalysis
//===----------------------------------------------------------------------===//

IntegerRangeAnalysis::IntegerRangeAnalysis(Operation *Root) {
  collectSpillCells(Root);
  solve(Root);
}

void IntegerRangeAnalysis::setResultsToTop(Operation *Op) {
  for (Value Result : Op->getResults())
    if (Result.getType().isIntOrIndex())
      join(Result, IntRange::top());
}

void IntegerRangeAnalysis::visitBinary(
    Operation *Op, IntRange (*Fold)(const IntRange &, const IntRange &)) {
  join(Op->getResult(0),
       Fold(getState(Op->getOperand(0)), getState(Op->getOperand(1))));
}

IntRange IntegerRangeAnalysis::getInductionVarState(LoopLikeOp Loop) {
  const IntRange &LB = getState(Loop.getLowerBound());
  const IntRange &UB = getState(Loop.getUpperBound());
  if (LB.Bottom || UB.Bottom)
    return IntRange();
  // Both execution tiers reject launches with a non-positive step before
  // the body runs, so the IV stays in [lb, ub) regardless of step size.
  return IntRange::range(LB.Min, saturate((__int128)UB.Max - 1));
}

IntRange
IntegerRangeAnalysis::identityRecordFieldRange(Operation *Func,
                                               int64_t FieldIndex) const {
  int64_t Field = (FieldIndex / 3) * 3;
  unsigned D = (unsigned)(FieldIndex % 3);
  auto Dim = [](ArrayAttr Sizes, unsigned D) -> std::optional<int64_t> {
    if (D < Sizes.size())
      return Sizes[D].cast<IntegerAttr>().getValue();
    return std::nullopt; // Beyond the launch rank: id 0, extent 1.
  };
  auto GS = Func->getAttrOfType<ArrayAttr>("sycl.global_size");
  auto WG = Func->getAttrOfType<ArrayAttr>("sycl.wg_size");
  switch (Field) {
  case identity::GlobalID:
    if (!GS)
      return IntRange::range(0, kMax);
    if (auto E = Dim(GS, D))
      return IntRange::range(0, std::max<int64_t>(*E - 1, 0));
    return IntRange::constant(0);
  case identity::GlobalRange:
    if (!GS)
      return IntRange::range(1, kMax);
    if (auto E = Dim(GS, D))
      return IntRange::constant(*E);
    return IntRange::constant(1);
  case identity::LocalID:
    if (!WG)
      return IntRange::range(0, kMax);
    if (auto E = Dim(WG, D))
      return IntRange::range(0, std::max<int64_t>(*E - 1, 0));
    return IntRange::constant(0);
  case identity::LocalRange:
    if (!WG)
      return IntRange::range(1, kMax);
    if (auto E = Dim(WG, D))
      return IntRange::constant(*E);
    return IntRange::constant(1);
  case identity::GroupID: {
    if (!GS || !WG)
      return IntRange::range(0, kMax);
    auto G = Dim(GS, D);
    auto W = Dim(WG, D);
    if (!G || !W)
      return IntRange::constant(0);
    if (*W <= 0)
      return IntRange::range(0, kMax);
    return IntRange::range(0, std::max<int64_t>((*G + *W - 1) / *W - 1, 0));
  }
  default:
    return IntRange::top();
  }
}

void IntegerRangeAnalysis::visitOperation(Operation *Op) {
  const std::string &Name = Op->getName().getStringRef();

  if (Name == arith::ConstantOp::getOperationName()) {
    if (std::optional<int64_t> C = getConstantIntValue(Op->getResult(0)))
      join(Op->getResult(0), IntRange::constant(*C));
    return;
  }
  if (Name == arith::AddIOp::getOperationName())
    return visitBinary(Op, addRanges);
  if (Name == arith::SubIOp::getOperationName())
    return visitBinary(Op, subRanges);
  if (Name == arith::MulIOp::getOperationName())
    return visitBinary(Op, mulRanges);
  if (Name == arith::DivSIOp::getOperationName())
    return visitBinary(Op, divRanges);
  if (Name == arith::RemSIOp::getOperationName())
    return visitBinary(Op, remRanges);
  if (Name == arith::MinSIOp::getOperationName())
    return visitBinary(Op, minRanges);
  if (Name == arith::MaxSIOp::getOperationName())
    return visitBinary(Op, maxRanges);
  if (Name == arith::AndIOp::getOperationName()) {
    // Bitwise AND of non-negatives never exceeds either operand.
    const IntRange &A = getState(Op->getOperand(0));
    const IntRange &B = getState(Op->getOperand(1));
    if (A.Bottom || B.Bottom)
      return;
    join(Op->getResult(0), A.Min >= 0 && B.Min >= 0
                               ? IntRange::range(0, std::min(A.Max, B.Max))
                               : IntRange::top());
    return;
  }
  if (Name == arith::SelectOp::getOperationName()) {
    if (!Op->getResult(0).getType().isIntOrIndex())
      return;
    IntRange R = getState(Op->getOperand(1));
    R.join(getState(Op->getOperand(2)));
    join(Op->getResult(0), R);
    return;
  }
  if (Name == arith::CmpIOp::getOperationName() ||
      Name == arith::CmpFOp::getOperationName()) {
    join(Op->getResult(0), IntRange::range(0, 1));
    return;
  }
  if (Name == arith::IndexCastOp::getOperationName() ||
      Name == arith::ExtSIOp::getOperationName()) {
    join(Op->getResult(0), getState(Op->getOperand(0)));
    return;
  }
  if (Name == arith::TruncIOp::getOperationName()) {
    const IntRange &A = getState(Op->getOperand(0));
    if (A.Bottom)
      return;
    auto Ty = Op->getResult(0).getType().dyn_cast<IntegerType>();
    if (Ty && Ty.getWidth() < 64) {
      int64_t Lo = -(int64_t(1) << (Ty.getWidth() - 1));
      int64_t Hi = (int64_t(1) << (Ty.getWidth() - 1)) - 1;
      join(Op->getResult(0), A.Min >= Lo && A.Max <= Hi
                                 ? A
                                 : IntRange::range(Lo, Hi));
    } else {
      join(Op->getResult(0), A);
    }
    return;
  }
  if (Name == memref::DimOp::getOperationName()) {
    auto Extents = getKnownExtents(memref::DimOp::cast(Op).getMemRef());
    std::optional<int64_t> D =
        getConstantIntValue(memref::DimOp::cast(Op).getDim());
    if (Extents && D && *D >= 0 && (size_t)*D < Extents->size())
      join(Op->getResult(0), IntRange::constant((*Extents)[*D]));
    else
      join(Op->getResult(0), IntRange::range(0, kMax));
    return;
  }
  if (Name == memref::LoadOp::getOperationName() ||
      Name == affine::AffineLoadOp::getOperationName()) {
    Value Result = Op->getResult(0);
    if (!Result.getType().isIntOrIndex())
      return;
    Value Mem = Op->getOperand(0);
    const std::vector<Value> Ops = Op->getOperands();
    std::vector<Value> Indices(Ops.begin() + 1, Ops.end());
    // Lowered-kernel identity record: argument 0 of a `sycl.lowered`
    // kernel, bounded by the host-propagated launch configuration.
    if (Mem.isBlockArgument() && Mem.getIndex() == 0) {
      Operation *Parent = Mem.getOwnerBlock()->getParentOp();
      if (Parent && Parent->hasAttr(sycl::kLoweredKernelAttrName)) {
        std::optional<int64_t> C =
            Indices.size() == 1 ? getConstantIntValue(Indices[0])
                                : std::nullopt;
        if (C && *C >= 0 && *C < identity::Words) {
          join(Result, identityRecordFieldRange(Parent, *C));
          return;
        }
      }
    }
    // Tracked spill cell: the join of the zero the arena starts with and
    // every value ever stored to the cell.
    auto SpillIt = Spills.find(Mem.getImpl());
    if (SpillIt != Spills.end()) {
      auto Ty = Mem.getType().cast<MemRefType>();
      if (std::optional<int64_t> Cell = constantCellIndex(Indices, Ty)) {
        IntRange R = IntRange::constant(0); // Arenas are zero-initialized.
        for (Operation *Store : SpillIt->second[*Cell].Stores)
          R.join(getState(Store->getOperand(0)));
        join(Result, R);
        return;
      }
    }
    join(Result, IntRange::top());
    return;
  }
  if (Name == memref::StoreOp::getOperationName() ||
      Name == affine::AffineStoreOp::getOperationName()) {
    // Forward through tracked spill cells: when the stored value's state
    // changes, the loads of the same cell must be recomputed.
    auto SpillIt = Spills.find(Op->getOperand(1).getImpl());
    if (SpillIt == Spills.end())
      return;
    auto Ty = Op->getOperand(1).getType().cast<MemRefType>();
    const std::vector<Value> Ops = Op->getOperands();
    std::vector<Value> Indices(Ops.begin() + 2, Ops.end());
    if (std::optional<int64_t> Cell = constantCellIndex(Indices, Ty))
      for (Operation *Load : SpillIt->second[*Cell].Loads)
        enqueue(Load);
    return;
  }
  // SYCL identity/range getters all produce a single non-negative index.
  if (Name.rfind("sycl.", 0) == 0 && Op->getNumResults() == 1 &&
      Op->getResult(0).getType().isIndex()) {
    join(Op->getResult(0), IntRange::range(0, kMax));
    return;
  }
  setResultsToTop(Op);
}

//===----------------------------------------------------------------------===//
// Access-proof helpers
//===----------------------------------------------------------------------===//

std::optional<std::vector<int64_t>> smlir::getKnownExtents(Value MemRef) {
  auto Ty = MemRef.getType().dyn_cast<MemRefType>();
  if (!Ty)
    return std::nullopt;
  const std::vector<int64_t> &Shape = Ty.getShape();
  if (std::none_of(Shape.begin(), Shape.end(), [](int64_t E) {
        return E == MemRefType::kDynamic;
      }))
    return Shape;
  // Dynamic shape: kernel arguments carry host-propagated accessor ranges
  // in `sycl.arg_ranges` ([[argIndex, e0, e1, ...], ...]).
  if (!MemRef.isBlockArgument())
    return std::nullopt;
  Operation *Parent = MemRef.getOwnerBlock()->getParentOp();
  if (!Parent ||
      Parent->getName().getStringRef() != FuncOp::getOperationName() ||
      FuncOp::cast(Parent).getEntryBlock() != MemRef.getOwnerBlock())
    return std::nullopt;
  auto Ranges = Parent->getAttrOfType<ArrayAttr>("sycl.arg_ranges");
  if (!Ranges)
    return std::nullopt;
  for (unsigned I = 0; I != Ranges.size(); ++I) {
    auto Entry = Ranges[I].dyn_cast<ArrayAttr>();
    if (!Entry || Entry.size() < 1)
      continue;
    if (Entry[0].cast<IntegerAttr>().getValue() != MemRef.getIndex())
      continue;
    if (Entry.size() - 1 != (unsigned)Ty.getRank())
      return std::nullopt; // Rank mismatch: refuse to guess.
    std::vector<int64_t> Extents;
    for (unsigned J = 1; J != Entry.size(); ++J)
      Extents.push_back(Entry[J].cast<IntegerAttr>().getValue());
    return Extents;
  }
  return std::nullopt;
}

/// Mirrors the bytecode VM's prefix row-major fold:
///   Linear = ((i0 * E1 + i1) * E2 + i2) ...
/// (the extent of dimension 0 never participates).
static IntRange linearIndexRange(const IntegerRangeAnalysis &RA,
                                 const std::vector<Value> &Indices,
                                 const std::vector<int64_t> &Extents) {
  IntRange Linear = IntRange::constant(0);
  for (size_t D = 0; D != Indices.size(); ++D) {
    if (D != 0)
      Linear = mulRanges(Linear, IntRange::constant(Extents[D]));
    Linear = addRanges(Linear, RA.getRange(Indices[D]));
  }
  return Linear;
}

static std::optional<int64_t> totalLen(const std::vector<int64_t> &Extents) {
  __int128 Total = 1;
  for (int64_t E : Extents) {
    if (E < 0)
      return std::nullopt;
    Total *= E;
    if (Total > kMax)
      return std::nullopt;
  }
  return (int64_t)Total;
}

/// Whether the runtime buffer behind \p Mem is guaranteed to be at least
/// as long as the product of getKnownExtents. True for alloca results
/// (the execution tiers size the slot from the same static shape) and
/// for entry arguments of `sycl.kernel` functions (the bytecode tier
/// re-verifies the bound accessor against the recorded extents at every
/// launch and falls back to checked execution on mismatch). Helper
/// functions carry no such guarantee for their arguments — callers may
/// pass views narrower than the declared static type — so footprints
/// through them stay unknown.
static bool extentsRuntimeGuaranteed(Value Mem) {
  if (Mem.isBlockArgument()) {
    Operation *Parent = Mem.getOwnerBlock()->getParentOp();
    return Parent &&
           Parent->getName().getStringRef() == FuncOp::getOperationName() &&
           FuncOp::cast(Parent).getEntryBlock() == Mem.getOwnerBlock() &&
           Parent->hasAttr("sycl.kernel");
  }
  Operation *Def = Mem.getDefiningOp();
  return Def && Def->getName().getStringRef() ==
                    memref::AllocaOp::getOperationName();
}

AccessFootprint smlir::computeAccessFootprint(const IntegerRangeAnalysis &RA,
                                              Operation *Op) {
  AccessFootprint FP;
  const std::string &Name = Op->getName().getStringRef();
  bool IsLoad = Name == memref::LoadOp::getOperationName() ||
                Name == affine::AffineLoadOp::getOperationName();
  bool IsStore = Name == memref::StoreOp::getOperationName() ||
                 Name == affine::AffineStoreOp::getOperationName();
  bool IsSubView = Name == memref::SubViewOp::getOperationName();
  if (!IsLoad && !IsStore && !IsSubView)
    return FP;
  unsigned MemIdx = IsStore ? 1 : 0;
  Value Mem = Op->getOperand(MemIdx);
  const std::vector<Value> Ops = Op->getOperands();
  std::vector<Value> Indices(Ops.begin() + MemIdx + 1, Ops.end());

  // Access through one level of `memref.subview`: the execution tiers
  // flatten the view to rank 1 at the subview's row-major origin, so the
  // effective linear index is origin + tail. Chained subviews are rare
  // and not worth modeling.
  Operation *Def = Mem.getDefiningOp();
  if (!IsSubView && Def &&
      Def->getName().getStringRef() ==
          memref::SubViewOp::getOperationName()) {
    auto View = memref::SubViewOp::cast(Def);
    if (!extentsRuntimeGuaranteed(View.getMemRef()))
      return FP;
    auto Extents = getKnownExtents(View.getMemRef());
    if (!Extents || Indices.size() != 1)
      return FP;
    std::vector<Value> ViewIndices = View.getIndices();
    if (ViewIndices.size() > Extents->size())
      return FP;
    std::optional<int64_t> Total = totalLen(*Extents);
    if (!Total)
      return FP;
    FP.ExtentsKnown = true;
    FP.TotalLen = *Total;
    FP.Index = addRanges(linearIndexRange(RA, ViewIndices, *Extents),
                         RA.getRange(Indices[0]));
    return FP;
  }
  if (!extentsRuntimeGuaranteed(Mem))
    return FP; // Views from unmodeled or runtime-unchecked producers.

  auto Extents = getKnownExtents(Mem);
  if (!Extents || Indices.size() > Extents->size())
    return FP;
  std::optional<int64_t> Total = totalLen(*Extents);
  if (!Total)
    return FP;
  FP.ExtentsKnown = true;
  FP.TotalLen = *Total;
  FP.Index = linearIndexRange(RA, Indices, *Extents);
  return FP;
}
