//===- ReachingDefinitions.cpp - Reaching definition analysis ---------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/ReachingDefinitions.h"

#include "dialect/SCF.h"
#include "dialect/SYCL.h"
#include "ir/Block.h"
#include "support/STLExtras.h"

using namespace smlir;

/// Returns true for types that denote memory (memref or opaque pointer).
static bool isMemoryType(Type Ty) {
  return Ty.isa<MemRefType>() || Ty.isa<llvmir::PtrType>();
}

ReachingDefinitionAnalysis::ReachingDefinitionAnalysis(Operation *Root)
    : Root(Root), AA(std::make_unique<SYCLAliasAnalysis>(Root)) {
  // Collect tracked objects: all memory-typed underlying objects appearing
  // in the function (arguments, allocations).
  std::set<detail::ValueImpl *> Seen;
  auto Track = [&](Value Val) {
    if (!isMemoryType(Val.getType()))
      return;
    Value Base = AliasAnalysis::getUnderlyingObject(Val);
    if (Seen.insert(Base.getImpl()).second)
      TrackedObjects.push_back(Base);
  };
  if (!Root->getRegions().empty() && !Root->getRegion(0).empty())
    for (Value Arg : Root->getRegion(0).front().getArguments())
      Track(Arg);
  Root->walk([&](Operation *Op) {
    for (Value Operand : Op->getOperands())
      Track(Operand);
    for (Value Result : Op->getResults())
      Track(Result);
  });

  if (Root->getRegions().empty() || Root->getRegion(0).empty())
    return;
  walkBlock(&Root->getRegion(0).front(), State());
}

ReachingDefinitionAnalysis::State
ReachingDefinitionAnalysis::join(const State &A, const State &B) {
  State Result = A;
  for (const auto &[Key, Defs] : B) {
    Definitions &Into = Result[Key];
    Into.Mods.insert(Defs.Mods.begin(), Defs.Mods.end());
    Into.PMods.insert(Defs.PMods.begin(), Defs.PMods.end());
  }
  return Result;
}

void ReachingDefinitionAnalysis::applyEffects(Operation *Op, State &S) {
  std::vector<MemoryEffect> Effects;
  bool Known = Op->getEffects(Effects);
  if (!Known) {
    // Unknown effects (e.g. calls, kernel launches): potentially modifies
    // every tracked object.
    for (Value Obj : TrackedObjects)
      S[Obj.getImpl()].PMods.insert(Op);
    return;
  }
  for (const MemoryEffect &Effect : Effects) {
    if (Effect.Kind != EffectKind::Write)
      continue;
    if (!Effect.Val) {
      // Write to an unspecified resource (e.g. a barrier).
      for (Value Obj : TrackedObjects)
        S[Obj.getImpl()].PMods.insert(Op);
      continue;
    }
    for (Value Obj : TrackedObjects) {
      switch (AA->alias(Effect.Val, Obj)) {
      case AliasResult::MustAlias:
        // Strong update: this write overwrites the whole location.
        S[Obj.getImpl()] = Definitions{{Op}, {}};
        break;
      case AliasResult::MayAlias:
      case AliasResult::PartialAlias:
        S[Obj.getImpl()].PMods.insert(Op);
        break;
      case AliasResult::NoAlias:
        break;
      }
    }
  }
}

ReachingDefinitionAnalysis::State
ReachingDefinitionAnalysis::walkBlock(Block *B, State In) {
  for (Operation *Op : *B) {
    InStates[Op] = In;
    if (auto If = scf::IfOp::dyn_cast(Op)) {
      State ThenOut = walkBlock(If.getThenBlock(), In);
      State ElseOut =
          If.hasElse() ? walkBlock(If.getElseBlock(), In) : In;
      In = join(ThenOut, ElseOut);
      continue;
    }
    if (auto Loop = LoopLikeOp::dyn_cast(Op)) {
      // The body may run zero or more times: iterate to fixpoint.
      State Fix = In;
      for (int Iter = 0; Iter < 8; ++Iter) {
        State Out = walkBlock(Loop.getBody(), Fix);
        State NewFix = join(Fix, Out);
        if (NewFix == Fix)
          break;
        Fix = std::move(NewFix);
      }
      In = Fix;
      continue;
    }
    if (Op->getNumRegions() > 0) {
      // Other region-holding ops: process bodies sequentially.
      for (auto &R : Op->getRegions())
        for (auto &Nested : *R)
          In = walkBlock(Nested.get(), In);
      continue;
    }
    applyEffects(Op, In);
  }
  return In;
}

Definitions ReachingDefinitionAnalysis::getDefinitions(Value MemVal,
                                                       Operation *At) const {
  Value Base = AliasAnalysis::getUnderlyingObject(MemVal);
  auto StateIt = InStates.find(At);
  if (StateIt == InStates.end())
    return Definitions();
  auto DefsIt = StateIt->second.find(Base.getImpl());
  return DefsIt == StateIt->second.end() ? Definitions() : DefsIt->second;
}
