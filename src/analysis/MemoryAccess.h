//===- MemoryAccess.h - SYCL memory access pattern analysis -----*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory Access Analysis (paper §V-D, based on Kaeli et al. [14]): derives
/// the access pattern of SYCL memory accesses in a kernel as an access
/// matrix over work-item ids and loop induction variables plus an offset
/// vector, e.g. for Listing 3:
///
///   [1 0 0]   [gid_x]   [1]
///   [0 0 2] x [gid_y] + [0]
///   [0 1 2]   [  i  ]   [2]
///
/// The inter–work-item submatrix (loop-IV columns removed) determines
/// whether the access can be coalesced by the GPU (Linear/ReverseLinear);
/// the intra–work-item submatrix (thread columns removed) determines
/// temporal reuse. Used by Loop Internalization (paper §VI-C) and by the
/// device cost model (coalescing classification).
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_ANALYSIS_MEMORYACCESS_H
#define SMLIR_ANALYSIS_MEMORYACCESS_H

#include "ir/Operation.h"
#include "ir/Value.h"

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace smlir {

/// Classification of an inter-work-item access matrix (after [14]).
enum class AccessPattern {
  /// Consecutive work-items access consecutive addresses.
  Linear,
  /// Consecutive work-items access consecutive addresses in reverse.
  ReverseLinear,
  /// The address does not depend on the work-item id (broadcast).
  Broadcast,
  /// Anything else: not coalescable.
  NonLinear,
};

std::string_view stringifyAccessPattern(AccessPattern Pattern);

/// The derived pattern of one memory access.
struct MemoryAccess {
  bool Valid = false;

  /// Thread-variable columns (work-item id values), ordered by queried
  /// dimension; each entry is the canonical id value.
  std::vector<Value> ThreadVars;
  /// Loop induction variable columns, outermost loop first.
  std::vector<Value> LoopIVs;
  /// Access matrix: one row per index dimension; row length equals
  /// ThreadVars.size() + LoopIVs.size() (thread columns first).
  std::vector<std::vector<int64_t>> Matrix;
  /// Constant offset per index dimension.
  std::vector<int64_t> Offsets;
  /// The accessed memory (accessor memref or plain memref).
  Value BaseMemory;
  /// True when the access reads memory (load), false for stores.
  bool IsRead = true;
  /// Dimensionality of the enclosing kernel's ND-range (from the item
  /// argument); consecutive work-items vary in the last dimension.
  unsigned NDDims = 1;

  unsigned getNumThreadVars() const { return ThreadVars.size(); }
  unsigned getNumLoopIVs() const { return LoopIVs.size(); }

  /// Matrix with loop-IV columns removed.
  std::vector<std::vector<int64_t>> getInterWorkItemMatrix() const;
  /// Matrix with thread-variable columns removed.
  std::vector<std::vector<int64_t>> getIntraWorkItemMatrix() const;

  /// Pattern of the inter-work-item matrix.
  AccessPattern classifyInterWorkItem() const;
  /// True if the access can be serviced by coalesced transactions.
  bool isCoalescable() const;
  /// True if the same work-item revisits addresses across loop iterations
  /// of the surrounding loop nest (intra matrix non-zero, paper §VI-C).
  bool hasTemporalReuse() const;
};

/// Derives access matrices for load/store operations in SYCL kernels.
class MemoryAccessAnalysis {
public:
  static constexpr std::string_view AnalysisName = "memory-access";

  explicit MemoryAccessAnalysis(Operation *Root) : Root(Root) {}

  /// Analyzes one access op: `affine.load`/`affine.store`,
  /// `memref.load`/`memref.store`, accessing either a plain memref or the
  /// result of a `sycl.accessor.subscript`.
  MemoryAccess analyze(Operation *AccessOp) const;

private:
  Operation *Root;
};

} // namespace smlir

#endif // SMLIR_ANALYSIS_MEMORYACCESS_H
