//===- DataFlow.h - Sparse forward dataflow framework -----------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse forward dataflow framework in the style of MLIR's
/// SparseForwardDataFlowAnalysis: per-Value lattice states driven to a
/// fixpoint by a worklist, with the structured-control-flow edges of this
/// codebase built in. Clients subclass SparseForwardDataFlowAnalysis with
/// a lattice type and implement the transfer function for ordinary
/// operations; the framework handles
///
///   - `scf.for`/`affine.for`: induction variables (via a client hook,
///     since their bounds are lattice-specific), `iter_args` as the join
///     of the initial operands and the loop yield, and loop results as
///     the join of init (zero-trip) and yield values;
///   - `scf.if`: results as the join of the then/else yields;
///   - `func.call`/`func.return`: callee entry arguments as the join over
///     all call sites, call results as the join over the callee's
///     returns — calls to functions outside the analysis root fall back
///     to the client's top state.
///
/// The lattice concept: default-constructible (= bottom, "no executions
/// reach this value yet"), `static LatticeT top()` (= no information),
/// `bool join(const LatticeT &)` returning whether the state changed, and
/// `bool operator==`. Joins on a single value are capped (kWideningLimit)
/// before the framework widens the state to top, bounding fixpoint
/// iteration for lattices of unbounded height (e.g. integer ranges grown
/// around a loop back-edge).
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_ANALYSIS_DATAFLOW_H
#define SMLIR_ANALYSIS_DATAFLOW_H

#include "dialect/Builtin.h"
#include "dialect/SCF.h"
#include "ir/Operation.h"
#include "ir/Value.h"

#include <deque>
#include <map>
#include <set>
#include <vector>

namespace smlir {
namespace dataflow {

/// FIFO worklist of operations with membership dedup: pushing an enqueued
/// operation again is a no-op, so one fixpoint round visits each changed
/// operation once.
class WorkList {
public:
  void push(Operation *Op);
  Operation *pop();
  bool empty() const { return Queue.empty(); }

private:
  std::deque<Operation *> Queue;
  std::set<Operation *> Enqueued;
};

/// Call edges under one analysis root: which `func.call` sites target each
/// function defined under the root, and the reverse resolution. Calls
/// whose callee is not defined under the root resolve to null (the
/// framework treats them as opaque).
class CallEdges {
public:
  /// Collects functions and call sites under \p Root. Callee names are
  /// resolved against the functions found in the same walk, so a
  /// function-rooted analysis never sees edges escaping its root.
  explicit CallEdges(Operation *Root);

  /// The called function, or null when it is not defined under the root.
  Operation *resolveCallee(Operation *CallOp) const;
  /// All `func.call` operations under the root targeting \p Func.
  const std::vector<Operation *> &getCallSites(Operation *Func) const;
  /// True when \p Func has at least one resolved call site.
  bool isCalled(Operation *Func) const {
    return !getCallSites(Func).empty();
  }

private:
  std::map<std::string, Operation *> FunctionsByName;
  std::map<Operation *, std::vector<Operation *>> CallSites;
  std::map<Operation *, Operation *> Callees;
  std::vector<Operation *> Empty;
};

/// Base class for sparse forward dataflow analyses. See the file comment
/// for the lattice concept and the built-in control-flow handling.
template <typename LatticeT>
class SparseForwardDataFlowAnalysis {
public:
  /// Joins on one value before the framework widens it to top.
  static constexpr unsigned kWideningLimit = 32;

  virtual ~SparseForwardDataFlowAnalysis() = default;

  /// Runs the worklist to a fixpoint over every operation under \p Root.
  void solve(Operation *Root) {
    Edges = std::make_unique<CallEdges>(Root);
    this->Root = Root;
    Root->walk([&](Operation *Op) { List.push(Op); });
    // Entry block arguments of functions nothing under the root calls
    // (kernels, public entry points) start at the client's entry state;
    // called functions get their arguments from call-site joins instead.
    Root->walk([&](Operation *Op) {
      auto Func = FuncOp::dyn_cast(Op);
      if (!Func || Func.isDeclaration())
        return;
      if (Edges->isCalled(Op) && !Op->hasAttr("sycl.kernel"))
        return;
      Block *Entry = Func.getEntryBlock();
      for (unsigned I = 0, E = Entry->getNumArguments(); I != E; ++I)
        join(Entry->getArgument(I), getEntryState(Entry->getArgument(I)));
    });
    while (!List.empty())
      visit(List.pop());
  }

  /// The final state of \p V, or null when no execution reaching \p V was
  /// discovered (bottom).
  const LatticeT *lookup(Value V) const {
    auto It = States.find(V.getImpl());
    return It == States.end() ? nullptr : &It->second.State;
  }

protected:
  /// Transfer function for ordinary operations: read operand states with
  /// getState and publish result states with join. Unmodeled operations
  /// must set their results to top (or a sound refinement of it).
  virtual void visitOperation(Operation *Op) = 0;

  /// State of a function entry argument not refinable through call sites
  /// (kernels and uncalled functions). Defaults to top.
  virtual LatticeT getEntryState(Value Arg) {
    (void)Arg;
    return LatticeT::top();
  }

  /// State of a loop induction variable; lattice-specific (derived from
  /// the loop bounds for ranges). Defaults to top.
  virtual LatticeT getInductionVarState(LoopLikeOp Loop) {
    (void)Loop;
    return LatticeT::top();
  }

  /// Current state of \p V; bottom when nothing has reached it yet.
  const LatticeT &getState(Value V) {
    static const LatticeT Bottom{};
    auto It = States.find(V.getImpl());
    return It == States.end() ? Bottom : It->second.State;
  }

  /// Joins \p New into \p V's state; on change, enqueues every user of
  /// \p V (and widens to top past kWideningLimit changes). Returns
  /// whether the state changed.
  bool join(Value V, const LatticeT &New) {
    Entry &E = States.try_emplace(V.getImpl()).first->second;
    if (!E.State.join(New))
      return false;
    if (++E.Changes > kWideningLimit)
      E.State.join(LatticeT::top());
    for (OpOperand *Use : V.getUses())
      List.push(Use->getOwner());
    return true;
  }

  /// Re-enqueues \p Op for another visit (clients with non-SSA edges —
  /// e.g. forwarding through memory — use this to wire them up).
  void enqueue(Operation *Op) { List.push(Op); }

  /// Call edges of the current solve (valid during and after solve()).
  const CallEdges &getCallEdges() const { return *Edges; }

private:
  void visit(Operation *Op) {
    const std::string &Name = Op->getName().getStringRef();
    if (auto Loop = LoopLikeOp::dyn_cast(Op)) {
      visitLoop(Loop);
      return;
    }
    if (Name == scf::YieldOp::getOperationName() ||
        Name == affine::AffineYieldOp::getOperationName()) {
      visitYield(Op);
      return;
    }
    if (Name == CallOp::getOperationName()) {
      visitCall(Op);
      return;
    }
    if (Name == ReturnOp::getOperationName()) {
      visitReturn(Op);
      return;
    }
    if (Name == FuncOp::getOperationName() ||
        Name == scf::IfOp::getOperationName() ||
        Name == ModuleOp::getOperationName())
      return; // Driven by their contents (yields, returns, call sites).
    visitOperation(Op);
  }

  void visitLoop(LoopLikeOp Loop) {
    if (Loop.getBody()->getNumArguments() == 0)
      return; // Degenerate loop without a materialized body.
    join(Loop.getInductionVar(), getInductionVarState(Loop));
    for (unsigned I = 0, E = Loop.getNumIterArgs(); I != E; ++I) {
      const LatticeT &Init = getState(Loop.getInitArg(I));
      join(Loop.getRegionIterArg(I), Init);
      if (I < Loop->getNumResults())
        join(Loop->getResult(I), Init); // Zero-trip-count result.
    }
  }

  void visitYield(Operation *Op) {
    Operation *Parent = Op->getParentOp();
    if (!Parent)
      return;
    if (auto Loop = LoopLikeOp::dyn_cast(Parent)) {
      for (unsigned I = 0, E = Op->getNumOperands(); I != E; ++I) {
        const LatticeT &S = getState(Op->getOperand(I));
        if (I < Loop.getNumIterArgs())
          join(Loop.getRegionIterArg(I), S); // Loop back-edge.
        if (I < Parent->getNumResults())
          join(Parent->getResult(I), S);
      }
      return;
    }
    if (scf::IfOp::dyn_cast(Parent))
      for (unsigned I = 0, E = Op->getNumOperands(); I != E; ++I)
        if (I < Parent->getNumResults())
          join(Parent->getResult(I), getState(Op->getOperand(I)));
  }

  void visitCall(Operation *Op) {
    Operation *Callee = Edges->resolveCallee(Op);
    if (!Callee || FuncOp::cast(Callee).isDeclaration()) {
      for (Value Result : Op->getResults())
        join(Result, LatticeT::top());
      return;
    }
    Block *Entry = FuncOp::cast(Callee).getEntryBlock();
    for (unsigned I = 0, E = Op->getNumOperands(); I != E; ++I)
      if (I < Entry->getNumArguments())
        join(Entry->getArgument(I), getState(Op->getOperand(I)));
    // Results flow back through visitReturn when the callee's returns
    // change; nothing to do here.
  }

  void visitReturn(Operation *Op) {
    Operation *Func = Op->getParentOp();
    while (Func && Func->getName().getStringRef() !=
                       FuncOp::getOperationName())
      Func = Func->getParentOp();
    if (!Func)
      return;
    for (Operation *Call : Edges->getCallSites(Func))
      for (unsigned I = 0, E = Op->getNumOperands(); I != E; ++I)
        if (I < Call->getNumResults())
          join(Call->getResult(I), getState(Op->getOperand(I)));
  }

  struct Entry {
    LatticeT State{};
    unsigned Changes = 0;
  };

  Operation *Root = nullptr;
  std::map<detail::ValueImpl *, Entry> States;
  std::unique_ptr<CallEdges> Edges;
  WorkList List;
};

} // namespace dataflow
} // namespace smlir

#endif // SMLIR_ANALYSIS_DATAFLOW_H
