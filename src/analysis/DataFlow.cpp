//===- DataFlow.cpp - Sparse forward dataflow framework ---------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/DataFlow.h"

using namespace smlir;
using namespace smlir::dataflow;

void WorkList::push(Operation *Op) {
  if (Enqueued.insert(Op).second)
    Queue.push_back(Op);
}

Operation *WorkList::pop() {
  Operation *Op = Queue.front();
  Queue.pop_front();
  Enqueued.erase(Op);
  return Op;
}

CallEdges::CallEdges(Operation *Root) {
  std::vector<Operation *> Calls;
  Root->walk([&](Operation *Op) {
    if (auto Func = FuncOp::dyn_cast(Op)) {
      // Later definitions do not shadow earlier ones; duplicate symbol
      // names across nested modules are resolved first-wins, which
      // matches the single `@kernels` nesting this codebase produces.
      FunctionsByName.try_emplace(Func.getName(), Op);
      return;
    }
    if (CallOp::dyn_cast(Op))
      Calls.push_back(Op);
  });
  for (Operation *Call : Calls) {
    auto It = FunctionsByName.find(CallOp::cast(Call).getCallee());
    Operation *Callee = It == FunctionsByName.end() ? nullptr : It->second;
    Callees[Call] = Callee;
    if (Callee)
      CallSites[Callee].push_back(Call);
  }
}

Operation *CallEdges::resolveCallee(Operation *CallOp) const {
  auto It = Callees.find(CallOp);
  return It == Callees.end() ? nullptr : It->second;
}

const std::vector<Operation *> &
CallEdges::getCallSites(Operation *Func) const {
  auto It = CallSites.find(Func);
  return It == CallSites.end() ? Empty : It->second;
}
