//===- KernelLint.h - Static kernel safety linter ---------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static detection of kernel bugs the analyses can prove, reported as
/// structured, location-carrying diagnostics. Rules (stable IDs):
///
///   - `oob-access`: a load/store/subview whose index range provably
///     misses the accessed memory entirely (integer-range analysis).
///   - `divergent-barrier`: a `gpu.barrier`/`sycl.group_barrier` under
///     control flow that is not provably uniform — some work-items reach
///     the barrier while others never do (uniformity analysis).
///   - `racy-write`: a global/accessor store whose address is identical
///     across work-items (a Broadcast access) while the stored value is
///     work-item dependent — concurrent conflicting writes to one cell
///     (memory-access + uniformity analyses).
///   - `uninit-read`: a private/local alloca that is read but never
///     written through any of its uses.
///
/// The `lint-kernels` pass and `smlir-opt --lint` both drive this core.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_ANALYSIS_KERNELLINT_H
#define SMLIR_ANALYSIS_KERNELLINT_H

#include "ir/Operation.h"
#include "ir/Pass.h"

#include <string>
#include <vector>

namespace smlir {

/// One lint finding, tied to a rule and a source location.
struct LintDiagnostic {
  /// Stable rule identifier (`oob-access`, `divergent-barrier`,
  /// `racy-write`, `uninit-read`).
  std::string RuleId;
  /// Human-readable description of the specific finding.
  std::string Message;
  /// Location of the offending operation.
  Location Loc;
  /// Name of the kernel (or function) containing the finding.
  std::string Kernel;
};

/// Runs every lint rule over all functions under \p Root, using \p AM for
/// the underlying analyses (uniformity, memory-access, integer-range).
/// Diagnostics are ordered by discovery (walk order).
std::vector<LintDiagnostic> lintKernels(Operation *Root, AnalysisManager &AM);

/// Formats one diagnostic as `<loc>: error: [<rule>] <message> [in @<fn>]`.
std::string formatLintDiagnostic(const LintDiagnostic &Diag);

} // namespace smlir

#endif // SMLIR_ANALYSIS_KERNELLINT_H
