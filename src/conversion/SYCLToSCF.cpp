//===- SYCLToSCF.cpp - SYCL to SCF/MemRef dialect conversion ----------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `convert-sycl-to-scf` lowering (paper §II-B: dialect conversion as
/// the gradual lowering mechanism). Device kernels lose every `sycl.*`
/// operation:
///
///  - the item/nd_item argument becomes a private `memref<15xindex>`
///    identity record; work-item queries lower to indexed loads,
///  - id/range objects become private `memref<Dxindex>` allocas written by
///    `sycl.constructor` lowered to stores,
///  - accessors become rank-D dynamic memrefs in their memory space;
///    `sycl.accessor.subscript`/`get_pointer` lower to `memref.subview`,
///    `get_range` to `memref.dim`, `get_offset` to `memref.offset`,
///    `sycl.accessors.disjoint` to `memref.disjoint`,
///  - `sycl.group_barrier` lowers to `gpu.barrier`,
///  - the affine loop structure (`affine.for/yield/load/store`) lowers to
///    `scf.for/yield` and `memref.load/store`.
///
/// Converted kernels carry the `sycl.lowered` ABI attribute; the virtual
/// device binds launch arguments to the lowered signature directly.
///
//===----------------------------------------------------------------------===//

#include "conversion/Passes.h"

#include "dialect/Arith.h"
#include "dialect/Builtin.h"
#include "dialect/GPU.h"
#include "dialect/MemRef.h"
#include "dialect/SCF.h"
#include "dialect/SYCL.h"
#include "ir/Block.h"
#include "ir/PassRegistry.h"

using namespace smlir;

//===----------------------------------------------------------------------===//
// Type conversion
//===----------------------------------------------------------------------===//

void smlir::populateSYCLToSCFTypeConversions(TypeConverter &Converter) {
  // Identity fallback: types no SYCL rule claims are already legal.
  Converter.addConversion([](Type Ty) { return Ty; });
  Converter.addConversion([](Type Ty) -> std::optional<Type> {
    auto MemTy = Ty.dyn_cast<MemRefType>();
    if (!MemTy)
      return std::nullopt;
    MLIRContext *Ctx = Ty.getContext();
    Type Elem = MemTy.getElementType();
    if (Elem.isa<sycl::ItemType>() || Elem.isa<sycl::NDItemType>())
      return MemRefType::get(Ctx, {sycl::ItemStateWords},
                             IndexType::get(Ctx), MemorySpace::Private);
    if (auto IDTy = Elem.dyn_cast<sycl::IDType>())
      return MemRefType::get(Ctx, {IDTy.getDim()}, IndexType::get(Ctx),
                             MemorySpace::Private);
    if (auto RangeTy = Elem.dyn_cast<sycl::RangeType>())
      return MemRefType::get(Ctx, {RangeTy.getDim()}, IndexType::get(Ctx),
                             MemorySpace::Private);
    if (auto AccTy = Elem.dyn_cast<sycl::AccessorType>()) {
      std::vector<int64_t> Shape(AccTy.getDim(), MemRefType::kDynamic);
      return MemRefType::get(Ctx, std::move(Shape), AccTy.getElementType(),
                             AccTy.isLocal() ? MemorySpace::Local
                                             : MemorySpace::Global);
    }
    return std::nullopt;
  });
}

//===----------------------------------------------------------------------===//
// Pattern helpers
//===----------------------------------------------------------------------===//

namespace {

/// Casts \p V to index if it is an integer of another width.
Value castToIndex(ConversionPatternRewriter &Rewriter, Location Loc,
                  Value V) {
  if (V.getType().isIndex())
    return V;
  return Rewriter
      .create<arith::IndexCastOp>(Loc, V,
                                  IndexType::get(Rewriter.getContext()))
      .getOperation()
      ->getResult(0);
}

/// True once \p V carries the converted (index-element) object memref
/// type; patterns bail out until the producing value has been remapped.
bool isConvertedObjMemRef(Value V) {
  auto Ty = V.getType().dyn_cast<MemRefType>();
  return Ty && Ty.getElementType().isIndex();
}

/// True once \p V carries the converted accessor type (data memref).
bool isConvertedAccessor(Value V) {
  auto Ty = V.getType().dyn_cast<MemRefType>();
  return Ty && !Ty.getElementType().isa<sycl::AccessorType>() &&
         !Ty.getElementType().isa<sycl::ItemType>() &&
         !Ty.getElementType().isa<sycl::NDItemType>() &&
         !Ty.getElementType().isa<sycl::IDType>() &&
         !Ty.getElementType().isa<sycl::RangeType>();
}

//===----------------------------------------------------------------------===//
// Function and call signatures
//===----------------------------------------------------------------------===//

/// Converts a function signature: new argument types via the type
/// converter, entry block arguments remapped 1:1. Kernels (item/nd_item
/// leading argument) gain the `sycl.lowered` ABI marker.
struct FuncSignatureLowering : ConversionPattern {
  explicit FuncSignatureLowering(const TypeConverter *Converter)
      : ConversionPattern(FuncOp::getOperationName(), /*Benefit=*/1,
                          Converter) {}

  LogicalResult
  matchAndRewrite(Operation *Op, const std::vector<Value> &,
                  ConversionPatternRewriter &Rewriter) const override {
    FuncOp Func = FuncOp::cast(Op);
    FunctionType OldTy = Func.getFunctionType();
    std::vector<Type> NewInputs, NewResults;
    const TypeConverter *Converter = getTypeConverter();
    if (Converter->convertTypes(OldTy.getInputs(), NewInputs).failed() ||
        Converter->convertTypes(OldTy.getResults(), NewResults).failed())
      return failure();
    if (NewInputs == OldTy.getInputs() && NewResults == OldTy.getResults())
      return failure(); // Nothing to do; should have been legal.

    bool IsKernel = false;
    if (!OldTy.getInputs().empty())
      if (auto ArgTy = OldTy.getInput(0).dyn_cast<MemRefType>())
        IsKernel = ArgTy.getElementType().isa<sycl::ItemType>() ||
                   ArgTy.getElementType().isa<sycl::NDItemType>();

    Rewriter.updateAttribute(
        Op, "function_type",
        TypeAttr::get(FunctionType::get(Op->getContext(), NewInputs,
                                        NewResults)));
    if (!Func.isDeclaration())
      Rewriter.applySignatureConversion(Func.getEntryBlock(), NewInputs);
    if (IsKernel)
      Rewriter.updateAttribute(Op, sycl::kLoweredKernelAttrName,
                               UnitAttr::get(Op->getContext()));
    return success();
  }
};

/// Rebuilds `func.call` with remapped operands and converted result types.
struct CallLowering : OpConversionPattern<CallOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(CallOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Operation *Raw = Op.getOperation();
    std::vector<Type> ResultTypes;
    for (unsigned I = 0, E = Raw->getNumResults(); I != E; ++I) {
      Type Converted = getTypeConverter()->convertType(Raw->getResultType(I));
      if (!Converted)
        return failure();
      ResultTypes.push_back(Converted);
    }
    Rewriter.replaceOpWithNewOp<CallOp>(Raw, Op.getCallee(),
                                        Adaptor.getOperands(), ResultTypes);
    return success();
  }
};

/// Retypes `memref.alloca` results holding SYCL objects.
struct AllocaLowering : OpConversionPattern<memref::AllocaOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(memref::AllocaOp Op, OpAdaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Operation *Raw = Op.getOperation();
    Type Converted = getTypeConverter()->convertType(Raw->getResultType(0));
    if (!Converted || Converted == Raw->getResultType(0))
      return failure();
    Rewriter.replaceOpWithNewOp<memref::AllocaOp>(
        Raw, Converted.cast<MemRefType>());
    return success();
  }
};

//===----------------------------------------------------------------------===//
// SYCL object construction and element access
//===----------------------------------------------------------------------===//

/// `sycl.constructor @id(%dst, %i...)` -> one store per element into the
/// converted `memref<Dxindex>`.
struct ConstructorLowering : OpConversionPattern<sycl::ConstructorOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(sycl::ConstructorOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Value Dst = Adaptor.getOperand(0);
    if (!isConvertedObjMemRef(Dst))
      return failure();
    Location Loc = Op.getLoc();
    for (unsigned I = 1, E = Adaptor.size(); I != E; ++I) {
      Value Index = arith::createIndexConstant(Rewriter, Loc, I - 1);
      Value Element = castToIndex(Rewriter, Loc, Adaptor.getOperand(I));
      Rewriter.create<memref::StoreOp>(Loc, Element, Dst,
                                       std::vector<Value>{Index});
    }
    Rewriter.eraseOp(Op.getOperation());
    return success();
  }
};

/// `sycl.id.get`/`sycl.range.get` -> load at the dim index.
template <typename SourceOp>
struct ObjGetLowering : OpConversionPattern<SourceOp> {
  using OpConversionPattern<SourceOp>::OpConversionPattern;
  using OpAdaptor = typename OpConversionPattern<SourceOp>::OpAdaptor;

  LogicalResult
  matchAndRewrite(SourceOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Value Obj = Adaptor.getOperand(0);
    if (!isConvertedObjMemRef(Obj))
      return failure();
    Location Loc = Op.getLoc();
    Value Index = castToIndex(Rewriter, Loc, Adaptor.getOperand(1));
    Rewriter.replaceOpWithNewOp<memref::LoadOp>(
        Op.getOperation(), Obj, std::vector<Value>{Index});
    return success();
  }
};

/// Work-item query -> load from the identity record at FieldBase + dim.
template <typename SourceOp, int64_t FieldBase>
struct ItemGetterLowering : OpConversionPattern<SourceOp> {
  using OpConversionPattern<SourceOp>::OpConversionPattern;
  using OpAdaptor = typename OpConversionPattern<SourceOp>::OpAdaptor;

  LogicalResult
  matchAndRewrite(SourceOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Value Item = Adaptor.getOperand(0);
    if (!isConvertedObjMemRef(Item))
      return failure();
    Location Loc = Op.getLoc();
    Value Dim = castToIndex(Rewriter, Loc, Adaptor.getOperand(1));
    Value Base = arith::createIndexConstant(Rewriter, Loc, FieldBase);
    Value Offset = Rewriter.create<arith::AddIOp>(Loc, Base, Dim)
                       .getOperation()
                       ->getResult(0);
    Rewriter.replaceOpWithNewOp<memref::LoadOp>(
        Op.getOperation(), Item, std::vector<Value>{Offset});
    return success();
  }
};

/// `sycl.nd_item.get_group_range` -> global_range[d] / local_range[d].
struct GroupRangeLowering
    : OpConversionPattern<sycl::NDItemGetGroupRangeOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(sycl::NDItemGetGroupRangeOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Value Item = Adaptor.getOperand(0);
    if (!isConvertedObjMemRef(Item))
      return failure();
    Location Loc = Op.getLoc();
    Value Dim = castToIndex(Rewriter, Loc, Adaptor.getOperand(1));
    auto LoadField = [&](int64_t Base) {
      Value BaseC = arith::createIndexConstant(Rewriter, Loc, Base);
      Value Offset = Rewriter.create<arith::AddIOp>(Loc, BaseC, Dim)
                         .getOperation()
                         ->getResult(0);
      return Rewriter
          .create<memref::LoadOp>(Loc, Item, std::vector<Value>{Offset})
          .getOperation()
          ->getResult(0);
    };
    Value Global = LoadField(sycl::ItemStateGlobalRange);
    Value Local = LoadField(sycl::ItemStateLocalRange);
    Rewriter.replaceOpWithNewOp<arith::DivSIOp>(Op.getOperation(), Global,
                                                Local);
    return success();
  }
};

//===----------------------------------------------------------------------===//
// Accessors
//===----------------------------------------------------------------------===//

/// `sycl.accessor.subscript %acc[%id]` -> load the id elements and take a
/// `memref.subview` of the data memref at that position.
struct SubscriptLowering : OpConversionPattern<sycl::AccessorSubscriptOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(sycl::AccessorSubscriptOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Value Acc = Adaptor.getOperand(0);
    Value IDMem = Adaptor.getOperand(1);
    if (!isConvertedAccessor(Acc) || !isConvertedObjMemRef(IDMem))
      return failure();
    Location Loc = Op.getLoc();
    unsigned Rank = Acc.getType().cast<MemRefType>().getRank();
    std::vector<Value> Indices;
    Indices.reserve(Rank);
    for (unsigned D = 0; D != Rank; ++D) {
      Value C = arith::createIndexConstant(Rewriter, Loc, D);
      Indices.push_back(
          Rewriter.create<memref::LoadOp>(Loc, IDMem, std::vector<Value>{C})
              .getOperation()
              ->getResult(0));
    }
    Rewriter.replaceOpWithNewOp<memref::SubViewOp>(Op.getOperation(), Acc,
                                                   Indices);
    return success();
  }
};

/// `sycl.accessor.get_pointer` -> subview at the origin.
struct GetPointerLowering
    : OpConversionPattern<sycl::AccessorGetPointerOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(sycl::AccessorGetPointerOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Value Acc = Adaptor.getOperand(0);
    if (!isConvertedAccessor(Acc))
      return failure();
    Location Loc = Op.getLoc();
    unsigned Rank = Acc.getType().cast<MemRefType>().getRank();
    Value Zero = arith::createIndexConstant(Rewriter, Loc, 0);
    std::vector<Value> Indices(Rank, Zero);
    Rewriter.replaceOpWithNewOp<memref::SubViewOp>(Op.getOperation(), Acc,
                                                   Indices);
    return success();
  }
};

/// `sycl.accessor.get_range` -> `memref.dim` on the data memref.
struct AccessorGetRangeLowering
    : OpConversionPattern<sycl::AccessorGetRangeOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(sycl::AccessorGetRangeOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Value Acc = Adaptor.getOperand(0);
    if (!isConvertedAccessor(Acc))
      return failure();
    Value Dim = castToIndex(Rewriter, Op.getLoc(), Adaptor.getOperand(1));
    Rewriter.replaceOpWithNewOp<memref::DimOp>(Op.getOperation(), Acc, Dim);
    return success();
  }
};

/// `sycl.accessor.get_offset` -> `memref.offset` on the data memref (the
/// rebase offset travels with the runtime descriptor).
struct AccessorGetOffsetLowering
    : OpConversionPattern<sycl::AccessorGetOffsetOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(sycl::AccessorGetOffsetOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Value Acc = Adaptor.getOperand(0);
    if (!isConvertedAccessor(Acc))
      return failure();
    Value Dim = castToIndex(Rewriter, Op.getLoc(), Adaptor.getOperand(1));
    Rewriter.replaceOpWithNewOp<memref::OffsetOp>(Op.getOperation(), Acc,
                                                  Dim);
    return success();
  }
};

/// `sycl.accessors.disjoint` -> `memref.disjoint`.
struct DisjointLowering : OpConversionPattern<sycl::AccessorsDisjointOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(sycl::AccessorsDisjointOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    if (!isConvertedAccessor(Adaptor.getOperand(0)) ||
        !isConvertedAccessor(Adaptor.getOperand(1)))
      return failure();
    Rewriter.replaceOpWithNewOp<memref::DisjointOp>(
        Op.getOperation(), Adaptor.getOperand(0), Adaptor.getOperand(1));
    return success();
  }
};

/// `sycl.group_barrier %nditem` -> `gpu.barrier` (implicit work-group).
struct BarrierLowering : OpConversionPattern<sycl::GroupBarrierOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(sycl::GroupBarrierOp Op, OpAdaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Rewriter.create<gpu::BarrierOp>(Op.getLoc());
    Rewriter.eraseOp(Op.getOperation());
    return success();
  }
};

//===----------------------------------------------------------------------===//
// Affine loop structure
//===----------------------------------------------------------------------===//

/// `affine.for` -> `scf.for`, moving the body in place.
struct AffineForLowering : OpConversionPattern<affine::AffineForOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(affine::AffineForOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Operation *Raw = Op.getOperation();
    OperationState State(Op.getLoc(), scf::ForOp::getOperationName());
    State.addOperands(Adaptor.getOperands());
    for (unsigned I = 0, E = Raw->getNumResults(); I != E; ++I)
      State.addType(Raw->getResultType(I));
    State.addRegion();
    Operation *For = Rewriter.createOperation(State);
    Rewriter.moveRegionBody(Raw->getRegion(0), For->getRegion(0));
    Rewriter.replaceOp(Raw, For->getResults());
    return success();
  }
};

/// `affine.yield` -> `scf.yield` (after its parent loop was converted).
struct AffineYieldLowering : OpConversionPattern<affine::AffineYieldOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(affine::AffineYieldOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Operation *Parent = Op.getOperation()->getParentOp();
    if (!Parent ||
        Parent->getName().getStringRef() != scf::ForOp::getOperationName())
      return failure();
    Rewriter.replaceOpWithNewOp<scf::YieldOp>(Op.getOperation(),
                                              Adaptor.getOperands());
    return success();
  }
};

/// `affine.load` -> `memref.load`.
struct AffineLoadLowering : OpConversionPattern<affine::AffineLoadOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(affine::AffineLoadOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Value MemRef = Adaptor.getOperand(0);
    if (!MemRef.getType().isa<MemRefType>())
      return failure();
    std::vector<Value> Indices(Adaptor.getOperands().begin() + 1,
                               Adaptor.getOperands().end());
    Rewriter.replaceOpWithNewOp<memref::LoadOp>(Op.getOperation(), MemRef,
                                                Indices);
    return success();
  }
};

/// `affine.store` -> `memref.store`.
struct AffineStoreLowering : OpConversionPattern<affine::AffineStoreOp> {
  using OpConversionPattern::OpConversionPattern;

  LogicalResult
  matchAndRewrite(affine::AffineStoreOp Op, OpAdaptor Adaptor,
                  ConversionPatternRewriter &Rewriter) const override {
    Value MemRef = Adaptor.getOperand(1);
    if (!MemRef.getType().isa<MemRefType>())
      return failure();
    std::vector<Value> Indices(Adaptor.getOperands().begin() + 2,
                               Adaptor.getOperands().end());
    Rewriter.create<memref::StoreOp>(Op.getLoc(), Adaptor.getOperand(0),
                                     MemRef, Indices);
    Rewriter.eraseOp(Op.getOperation());
    return success();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Pattern and target population
//===----------------------------------------------------------------------===//

void smlir::populateSYCLToSCFPatterns(const TypeConverter &Converter,
                                      RewritePatternSet &Patterns) {
  const TypeConverter *TC = &Converter;
  Patterns.add<FuncSignatureLowering>(TC);
  Patterns.add<CallLowering>(TC);
  Patterns.add<AllocaLowering>(TC);
  Patterns.add<ConstructorLowering>(TC);
  Patterns.add<ObjGetLowering<sycl::IDGetOp>>(TC);
  Patterns.add<ObjGetLowering<sycl::RangeGetOp>>(TC);
  Patterns.add<
      ItemGetterLowering<sycl::ItemGetIDOp, sycl::ItemStateGlobalID>>(TC);
  Patterns.add<
      ItemGetterLowering<sycl::ItemGetRangeOp, sycl::ItemStateGlobalRange>>(
      TC);
  Patterns.add<ItemGetterLowering<sycl::NDItemGetGlobalIDOp,
                                  sycl::ItemStateGlobalID>>(TC);
  Patterns.add<ItemGetterLowering<sycl::NDItemGetLocalIDOp,
                                  sycl::ItemStateLocalID>>(TC);
  Patterns.add<ItemGetterLowering<sycl::NDItemGetGroupIDOp,
                                  sycl::ItemStateGroupID>>(TC);
  Patterns.add<ItemGetterLowering<sycl::NDItemGetGlobalRangeOp,
                                  sycl::ItemStateGlobalRange>>(TC);
  Patterns.add<ItemGetterLowering<sycl::NDItemGetLocalRangeOp,
                                  sycl::ItemStateLocalRange>>(TC);
  Patterns.add<GroupRangeLowering>(TC);
  Patterns.add<SubscriptLowering>(TC);
  Patterns.add<GetPointerLowering>(TC);
  Patterns.add<AccessorGetRangeLowering>(TC);
  Patterns.add<AccessorGetOffsetLowering>(TC);
  Patterns.add<DisjointLowering>(TC);
  Patterns.add<BarrierLowering>(TC);
  Patterns.add<AffineForLowering>(TC);
  Patterns.add<AffineYieldLowering>(TC);
  Patterns.add<AffineLoadLowering>(TC);
  Patterns.add<AffineStoreLowering>(TC);
}

void smlir::buildSYCLToSCFConversionTarget(ConversionTarget &Target,
                                           const TypeConverter &Converter) {
  Target.addLegalDialects("arith", "math", "scf", "gpu", "memref", "func",
                          "builtin");
  Target.addIllegalDialect("sycl");
  Target.addIllegalDialect("affine");
  // A surviving cast means some producer/consumer was never converted.
  Target.addIllegalOp("builtin.unrealized_conversion_cast");
  const TypeConverter *TC = &Converter;
  Target.addDynamicallyLegalOp(FuncOp::getOperationName(),
                               [TC](Operation *Op) {
                                 return TC->isSignatureLegal(
                                     FuncOp::cast(Op).getFunctionType());
                               });
  Target.addDynamicallyLegalOp(
      CallOp::getOperationName(), [TC](Operation *Op) {
        for (Value Operand : Op->getOperands())
          if (!TC->isLegal(Operand.getType()))
            return false;
        for (unsigned I = 0, E = Op->getNumResults(); I != E; ++I)
          if (!TC->isLegal(Op->getResultType(I)))
            return false;
        return true;
      });
  Target.addDynamicallyLegalOp(
      memref::AllocaOp::getOperationName(),
      [TC](Operation *Op) { return TC->isLegal(Op->getResultType(0)); });
}

//===----------------------------------------------------------------------===//
// The convert-sycl-to-scf pass
//===----------------------------------------------------------------------===//

namespace {

class ConvertSYCLToSCFPass : public Pass {
public:
  ConvertSYCLToSCFPass() : Pass("ConvertSYCLToSCF", "convert-sycl-to-scf") {}

  PassResult runOnOperation(Operation *Root, AnalysisManager &) override {
    TypeConverter Converter;
    populateSYCLToSCFTypeConversions(Converter);
    RewritePatternSet Patterns;
    populateSYCLToSCFPatterns(Converter, Patterns);
    ConversionTarget Target;
    buildSYCLToSCFConversionTarget(Target, Converter);

    // Device functions only: kernels (and their callees) live in the
    // `@kernels` module or carry the `sycl.kernel` attribute. Host code
    // keeps its `sycl.host.*` representation.
    std::vector<Operation *> DeviceFuncs;
    Root->walk([&](Operation *Op) {
      if (!FuncOp::dyn_cast(Op))
        return;
      bool IsDevice = Op->hasAttr("sycl.kernel");
      if (!IsDevice)
        if (auto Parent = ModuleOp::dyn_cast(Op->getParentOp()))
          IsDevice = Parent.getName() == "kernels";
      if (IsDevice)
        DeviceFuncs.push_back(Op);
    });

    for (Operation *Func : DeviceFuncs) {
      std::string Error;
      if (applyFullConversion(Func, Target, Patterns, &Converter, &Error)
              .failed()) {
        std::string Name = FuncOp::cast(Func).getName();
        return {failure(), PreservedAnalyses::none(),
                "convert-sycl-to-scf on @" + Name + ": " + Error};
      }
      incrementStatistic("kernels-lowered");
    }
    return {success(), PreservedAnalyses::none()};
  }
};

} // namespace

std::unique_ptr<Pass> smlir::createConvertSYCLToSCFPass() {
  return std::make_unique<ConvertSYCLToSCFPass>();
}

void smlir::registerConversionPasses() {
  PassRegistry::get().registerPass(
      "convert-sycl-to-scf",
      "Lower SYCL device ops to scf/memref/arith (+gpu.barrier) via "
      "dialect conversion",
      createConvertSYCLToSCFPass);
}
