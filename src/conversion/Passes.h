//===- Passes.h - Conversion pass declarations ------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dialect-conversion passes: the lowering layer that converts the
/// high-level SYCL device dialect out of kernels (paper §II-B's "gradual
/// lowering process through dialect conversion"), leaving only
/// scf/memref/arith (+ gpu.barrier) so backends and the interpreter no
/// longer need SYCL semantics. The populate* entry points expose the type
/// conversions, patterns and target so tests and future conversions can
/// compose them.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_CONVERSION_PASSES_H
#define SMLIR_CONVERSION_PASSES_H

#include "ir/DialectConversion.h"
#include "ir/Pass.h"

#include <memory>

namespace smlir {

/// Installs the SYCL → SCF/MemRef type conversion rules:
///  - memref-of-item/nd_item  -> private memref<15xindex> (identity state)
///  - memref-of-id/range<D>   -> private memref<Dxindex>
///  - memref-of-accessor      -> rank-D dynamic memref of the element type
///                               in the accessor's memory space
///  - everything else         -> itself.
void populateSYCLToSCFTypeConversions(TypeConverter &Converter);

/// Adds every SYCL → SCF/MemRef lowering pattern (device ops, affine loop
/// structure, function signatures, calls and allocas) to \p Patterns.
void populateSYCLToSCFPatterns(const TypeConverter &Converter,
                               RewritePatternSet &Patterns);

/// Configures \p Target for the lowering: sycl and affine are illegal;
/// scf/memref/arith/math/gpu are legal; func.func, func.call and
/// memref.alloca are legal once their types are converted. \p Converter
/// must outlive \p Target.
void buildSYCLToSCFConversionTarget(ConversionTarget &Target,
                                    const TypeConverter &Converter);

/// The `convert-sycl-to-scf` pass: applies a full conversion to every
/// device function (functions marked `sycl.kernel` or nested in the
/// `@kernels` module). Converted kernels carry the `sycl.lowered` ABI
/// attribute consumed by the virtual device.
std::unique_ptr<Pass> createConvertSYCLToSCFPass();

/// Registers all conversion passes with the global PassRegistry.
void registerConversionPasses();

} // namespace smlir

#endif // SMLIR_CONVERSION_PASSES_H
