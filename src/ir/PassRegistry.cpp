//===- PassRegistry.cpp - Pass registration and textual pipelines ----------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/PassRegistry.h"

#include <algorithm>
#include <cctype>
#include <sstream>

using namespace smlir;

//===----------------------------------------------------------------------===//
// PassRegistry
//===----------------------------------------------------------------------===//

PassRegistry &PassRegistry::get() {
  static PassRegistry Registry;
  return Registry;
}

void PassRegistry::registerPass(
    std::string Mnemonic, std::string Description,
    std::function<std::unique_ptr<Pass>()> Factory) {
  for (auto &Info : Infos) {
    if (Info->Mnemonic == Mnemonic) {
      Info->Description = std::move(Description);
      Info->Factory = std::move(Factory);
      return;
    }
  }
  auto Info = std::make_unique<PassInfo>();
  Info->Mnemonic = std::move(Mnemonic);
  Info->Description = std::move(Description);
  Info->Factory = std::move(Factory);
  Infos.push_back(std::move(Info));
}

const PassInfo *PassRegistry::lookup(std::string_view Mnemonic) const {
  for (const auto &Info : Infos)
    if (Info->Mnemonic == Mnemonic)
      return Info.get();
  return nullptr;
}

std::vector<const PassInfo *> PassRegistry::getPassInfos() const {
  std::vector<const PassInfo *> Result;
  for (const auto &Info : Infos)
    Result.push_back(Info.get());
  std::sort(Result.begin(), Result.end(),
            [](const PassInfo *A, const PassInfo *B) {
              return A->Mnemonic < B->Mnemonic;
            });
  return Result;
}

//===----------------------------------------------------------------------===//
// Pipeline parsing
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent parser over the pipeline grammar. Positions in error
/// messages are 1-based offsets into the original string.
class PipelineParser {
public:
  explicit PipelineParser(std::string_view Text) : Text(Text) {}

  /// pipeline ::= element (',' element)*
  LogicalResult parsePipeline(std::vector<std::unique_ptr<Pass>> &Passes,
                              bool Nested) {
    while (true) {
      if (parseElement(Passes).failed())
        return failure();
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    skipSpace();
    if (!Nested && Pos < Text.size())
      return error("unexpected character '" + std::string(1, Text[Pos]) +
                   "'");
    return success();
  }

  const std::string &getError() const { return Error; }

private:
  /// element ::= mnemonic | 'func' '(' pipeline ')'
  LogicalResult parseElement(std::vector<std::unique_ptr<Pass>> &Passes) {
    skipSpace();
    std::string Mnemonic = lexMnemonic();
    if (Mnemonic.empty()) {
      if (Pos < Text.size() && (Text[Pos] == ',' || Text[Pos] == ')'))
        return error("empty pipeline element");
      if (Pos >= Text.size())
        return error("expected a pass mnemonic");
      return error("expected a pass mnemonic, got '" +
                   std::string(1, Text[Pos]) + "'");
    }
    skipSpace();

    if (Pos < Text.size() && Text[Pos] == '(') {
      if (Mnemonic != "func")
        return error("only 'func' may carry a nested pipeline, got '" +
                     Mnemonic + "('");
      size_t OpenPos = Pos++;
      auto Nested = std::make_unique<FunctionPipelinePass>();
      std::vector<std::unique_ptr<Pass>> NestedPasses;
      if (parsePipeline(NestedPasses, /*Nested=*/true).failed())
        return failure();
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != ')') {
        Pos = OpenPos;
        return error("unbalanced '(': missing ')'");
      }
      ++Pos;
      for (auto &P : NestedPasses)
        Nested->addPass(std::move(P));
      Passes.push_back(std::move(Nested));
      return success();
    }

    if (Mnemonic == "func")
      return error("'func' requires a nested pipeline: func(...)");

    const PassInfo *Info = PassRegistry::get().lookup(Mnemonic);
    if (!Info)
      return error("unknown pass mnemonic '" + Mnemonic + "'");
    Passes.push_back(Info->Factory());
    return success();
  }

  std::string lexMnemonic() {
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '-' || Text[Pos] == '_'))
      ++Pos;
    return std::string(Text.substr(Start, Pos - Start));
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  LogicalResult error(std::string Message) {
    std::ostringstream OS;
    OS << "pipeline error at position " << (Pos + 1) << ": " << Message;
    Error = OS.str();
    return failure();
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Error;
};

} // namespace

LogicalResult smlir::parsePassPipeline(std::string_view Pipeline,
                                       PassManager &PM,
                                       std::string *ErrorMessage) {
  // An all-whitespace pipeline is the empty pipeline, not an error.
  if (Pipeline.find_first_not_of(" \t\n\r") == std::string_view::npos)
    return success();
  PipelineParser Parser(Pipeline);
  std::vector<std::unique_ptr<Pass>> Passes;
  if (Parser.parsePipeline(Passes, /*Nested=*/false).failed()) {
    if (ErrorMessage)
      *ErrorMessage = Parser.getError();
    return failure();
  }
  for (auto &P : Passes)
    PM.addPass(std::move(P));
  return success();
}

std::string smlir::printPassPipeline(const PassManager &PM) {
  std::ostringstream OS;
  const auto &Passes = PM.getPasses();
  for (size_t I = 0, E = Passes.size(); I != E; ++I) {
    if (I)
      OS << ",";
    Passes[I]->printPipelineElement(OS);
  }
  return OS.str();
}
