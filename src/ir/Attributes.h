//===- Attributes.h - IR attribute system -----------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Uniqued, immutable compile-time values attached to operations: integers,
/// floats, strings, types, arrays, symbol references and the unit attribute.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_ATTRIBUTES_H
#define SMLIR_IR_ATTRIBUTES_H

#include "ir/Types.h"

#include <cassert>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace smlir {

namespace detail {

/// Base class for uniqued attribute storage; the canonical printed form is
/// the uniquing key.
struct AttributeStorage {
  AttributeStorage(TypeID ID, MLIRContext *Context, std::string Key)
      : ID(ID), Context(Context), Key(std::move(Key)) {}
  virtual ~AttributeStorage() = default;

  TypeID ID;
  MLIRContext *Context;
  std::string Key;
};

} // namespace detail

/// Value-semantic handle to a uniqued attribute. A default-constructed
/// Attribute is null.
class Attribute {
public:
  using Storage = detail::AttributeStorage;

  Attribute() = default;
  explicit Attribute(Storage *Impl) : Impl(Impl) {}

  explicit operator bool() const { return Impl != nullptr; }
  bool operator==(Attribute Other) const { return Impl == Other.Impl; }
  bool operator!=(Attribute Other) const { return Impl != Other.Impl; }

  MLIRContext *getContext() const;
  TypeID getTypeID() const;

  template <typename U>
  bool isa() const {
    assert(Impl && "isa<> used on a null attribute");
    return U::classof(*this);
  }
  template <typename U>
  U dyn_cast() const {
    return Impl && isa<U>() ? U(Impl) : U();
  }
  template <typename U>
  U cast() const {
    assert(isa<U>() && "cast<U>() on incompatible attribute");
    return U(Impl);
  }

  const std::string &str() const;
  void print(std::ostream &OS) const;

  Storage *getImpl() const { return Impl; }

protected:
  Storage *Impl = nullptr;
};

inline std::ostream &operator<<(std::ostream &OS, Attribute Attr) {
  Attr.print(OS);
  return OS;
}

//===----------------------------------------------------------------------===//
// Concrete attributes
//===----------------------------------------------------------------------===//

/// A typed integer constant, e.g. `42 : i32` or `7 : index`. Also used for
/// booleans (i1).
class IntegerAttr : public Attribute {
public:
  using Attribute::Attribute;
  static IntegerAttr get(Type Ty, int64_t Value);
  int64_t getValue() const;
  Type getType() const;
  static bool classof(Attribute Attr);
};

/// A typed floating-point constant, e.g. `2.5 : f32`.
class FloatAttr : public Attribute {
public:
  using Attribute::Attribute;
  static FloatAttr get(Type Ty, double Value);
  double getValue() const;
  Type getType() const;
  static bool classof(Attribute Attr);
};

/// A string constant, e.g. `"a"`.
class StringAttr : public Attribute {
public:
  using Attribute::Attribute;
  static StringAttr get(MLIRContext *Context, std::string_view Value);
  const std::string &getValue() const;
  static bool classof(Attribute Attr);
};

/// An attribute wrapping a type, e.g. `!sycl.buffer<1, f32>`.
class TypeAttr : public Attribute {
public:
  using Attribute::Attribute;
  static TypeAttr get(Type Ty);
  Type getValue() const;
  static bool classof(Attribute Attr);
};

/// An ordered list of attributes, e.g. `[0 : index, 1 : index]`.
class ArrayAttr : public Attribute {
public:
  using Attribute::Attribute;
  static ArrayAttr get(MLIRContext *Context, std::vector<Attribute> Elements);
  const std::vector<Attribute> &getValue() const;
  unsigned size() const { return getValue().size(); }
  Attribute operator[](unsigned Index) const { return getValue()[Index]; }
  static bool classof(Attribute Attr);
};

/// A (possibly nested) reference to a symbol, e.g. `@kernels::@K`.
class SymbolRefAttr : public Attribute {
public:
  using Attribute::Attribute;
  static SymbolRefAttr get(MLIRContext *Context,
                           std::vector<std::string> Path);
  static SymbolRefAttr get(MLIRContext *Context, std::string_view Root);
  const std::vector<std::string> &getPath() const;
  /// The first path component.
  const std::string &getRootReference() const { return getPath().front(); }
  /// The final path component (the symbol actually referenced).
  const std::string &getLeafReference() const { return getPath().back(); }
  static bool classof(Attribute Attr);
};

/// A value-less attribute whose presence carries the information.
class UnitAttr : public Attribute {
public:
  using Attribute::Attribute;
  static UnitAttr get(MLIRContext *Context);
  static bool classof(Attribute Attr);
};

//===----------------------------------------------------------------------===//
// Convenience helpers
//===----------------------------------------------------------------------===//

/// Builds an i1 IntegerAttr.
IntegerAttr getBoolAttr(MLIRContext *Context, bool Value);
/// Builds an i64 IntegerAttr.
IntegerAttr getI64Attr(MLIRContext *Context, int64_t Value);
/// Builds an index-typed IntegerAttr.
IntegerAttr getIndexAttr(MLIRContext *Context, int64_t Value);
/// Builds an ArrayAttr of index-typed IntegerAttrs.
ArrayAttr getIndexArrayAttr(MLIRContext *Context,
                            const std::vector<int64_t> &Values);

} // namespace smlir

namespace std {
template <>
struct hash<smlir::Attribute> {
  size_t operator()(const smlir::Attribute &Attr) const {
    return hash<void *>()(static_cast<void *>(Attr.getImpl()));
  }
};
} // namespace std

#endif // SMLIR_IR_ATTRIBUTES_H
