//===- Parser.h - Textual IR parsing ----------------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IR format emitted by the printer: generic operation
/// syntax plus custom `module`/`func.func` forms and dialect types. Gives
/// full print/parse round-tripping, which the test suite checks as a
/// property over every constructed module.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_PARSER_H
#define SMLIR_IR_PARSER_H

#include "ir/Operation.h"
#include "ir/Types.h"

#include <string>
#include <string_view>

namespace smlir {

class MLIRContext;

/// Owning handle for a top-level parsed/constructed operation. Deletes the
/// operation (with all nested IR) on destruction.
class OwningOpRef {
public:
  OwningOpRef() = default;
  explicit OwningOpRef(Operation *Op) : Op(Op) {}
  OwningOpRef(OwningOpRef &&Other) : Op(Other.release()) {}
  OwningOpRef &operator=(OwningOpRef &&Other) {
    reset();
    Op = Other.release();
    return *this;
  }
  ~OwningOpRef() { reset(); }

  OwningOpRef(const OwningOpRef &) = delete;
  OwningOpRef &operator=(const OwningOpRef &) = delete;

  explicit operator bool() const { return Op != nullptr; }
  Operation *get() const { return Op; }
  Operation *operator->() const { return Op; }
  Operation *release() {
    Operation *Result = Op;
    Op = nullptr;
    return Result;
  }
  void reset() {
    if (!Op)
      return;
    Op->dropAllReferences();
    Op->erase();
    Op = nullptr;
  }

private:
  Operation *Op = nullptr;
};

/// Parses \p Source as a single top-level operation (typically a module).
/// On error, returns a null ref and, if \p ErrorMessage is non-null, fills
/// it with a diagnostic including line/column.
OwningOpRef parseSourceString(MLIRContext *Context, std::string_view Source,
                              std::string *ErrorMessage = nullptr);

/// Parses a type starting at \p Pos within \p Source; advances \p Pos past
/// the type. Returns a null type on error (and fills \p ErrorMessage if
/// non-null). Dialect type hooks may call this recursively for element
/// types.
Type parseTypeFromSource(MLIRContext *Context, std::string_view Source,
                         size_t &Pos, std::string *ErrorMessage = nullptr);

/// Parses \p Text in its entirety as a type.
Type parseTypeString(MLIRContext *Context, std::string_view Text,
                     std::string *ErrorMessage = nullptr);

} // namespace smlir

#endif // SMLIR_IR_PARSER_H
