//===- Pass.h - Pass and pass manager infrastructure ------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass infrastructure: Pass base class with statistics, an analysis
/// manager with per-root caching, and a PassManager with verification,
/// timing and IR-printing instrumentation (paper §II-B: "MLIR also provides
/// a common infrastructure for creating analyses and transformation
/// passes").
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_PASS_H
#define SMLIR_IR_PASS_H

#include "ir/Operation.h"
#include "support/LogicalResult.h"
#include "support/TypeID.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace smlir {

/// Caches analyses per (analysis type, root operation). Analyses are
/// constructed on demand with `AnalysisT(Operation *Root)` and invalidated
/// wholesale after each transformation pass.
class AnalysisManager {
public:
  template <typename AnalysisT>
  AnalysisT &get(Operation *Root) {
    Key K{TypeID::get<AnalysisT>(), Root};
    auto It = Cache.find(K);
    if (It == Cache.end()) {
      auto Holder = std::make_shared<Model<AnalysisT>>(Root);
      It = Cache.emplace(K, Holder).first;
    }
    return static_cast<Model<AnalysisT> *>(It->second.get())->Analysis;
  }

  void invalidateAll() { Cache.clear(); }

private:
  struct Concept {
    virtual ~Concept() = default;
  };
  template <typename AnalysisT>
  struct Model : Concept {
    explicit Model(Operation *Root) : Analysis(Root) {}
    AnalysisT Analysis;
  };

  using Key = std::pair<TypeID, Operation *>;
  std::map<Key, std::shared_ptr<Concept>> Cache;
};

/// Base class for all transformation passes.
class Pass {
public:
  Pass(std::string Name, std::string Argument)
      : Name(std::move(Name)), Argument(std::move(Argument)) {}
  virtual ~Pass();

  const std::string &getName() const { return Name; }
  /// Command-line style pass mnemonic, e.g. "detect-reduction".
  const std::string &getArgument() const { return Argument; }

  /// Runs this pass on \p Root. Failure aborts the pipeline.
  virtual LogicalResult runOnOperation(Operation *Root,
                                       AnalysisManager &AM) = 0;

  /// Named counters reported by the pass manager when statistics are
  /// enabled.
  void incrementStatistic(const std::string &Stat, int64_t Delta = 1) {
    Statistics[Stat] += Delta;
  }
  const std::map<std::string, int64_t> &getStatistics() const {
    return Statistics;
  }

private:
  std::string Name;
  std::string Argument;
  std::map<std::string, int64_t> Statistics;
};

/// Convenience base for passes operating on every `func.func` in the
/// module, including functions nested in inner modules (the joint
/// host+device representation keeps device kernels in a nested `@kernels`
/// module).
class FunctionPass : public Pass {
public:
  using Pass::Pass;

  LogicalResult runOnOperation(Operation *Root, AnalysisManager &AM) final;

  /// Runs on a single function.
  virtual LogicalResult runOnFunction(Operation *Func, AnalysisManager &AM) = 0;
};

/// Runs a sequence of passes over a module with optional instrumentation.
class PassManager {
public:
  explicit PassManager(MLIRContext *Context) : Context(Context) {}

  MLIRContext *getContext() const { return Context; }

  void addPass(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  template <typename PassT, typename... Args>
  void addPass(Args &&...PassArgs) {
    Passes.push_back(std::make_unique<PassT>(std::forward<Args>(PassArgs)...));
  }

  /// Verify the IR after each pass (on by default).
  void enableVerifier(bool Enable = true) { VerifyEach = Enable; }
  /// Print the IR to stderr after each pass.
  void enableIRPrinting(bool Enable = true) { PrintAfterEach = Enable; }
  /// Collect per-pass wall-clock timing.
  void enableTiming(bool Enable = true) { TimePasses = Enable; }

  /// Runs all passes on \p Root; stops and fails on the first pass failure
  /// or verification error.
  LogicalResult run(Operation *Root);

  /// Human-readable timing/statistics report for the last run.
  std::string getReport() const;

  const std::vector<std::unique_ptr<Pass>> &getPasses() const {
    return Passes;
  }

private:
  MLIRContext *Context;
  std::vector<std::unique_ptr<Pass>> Passes;
  std::vector<double> TimingsMs;
  bool VerifyEach = true;
  bool PrintAfterEach = false;
  bool TimePasses = false;
};

} // namespace smlir

#endif // SMLIR_IR_PASS_H
