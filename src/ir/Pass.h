//===- Pass.h - Pass and pass manager infrastructure ------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass infrastructure: Pass base class with statistics and preserved
/// analyses, an analysis manager with per-(analysis, root) caching,
/// fine-grained invalidation and hit/miss accounting, and a PassManager
/// with verification, timing and IR-printing instrumentation (paper §II-B:
/// "MLIR also provides a common infrastructure for creating analyses and
/// transformation passes").
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_PASS_H
#define SMLIR_IR_PASS_H

#include "ir/Operation.h"
#include "support/LogicalResult.h"
#include "support/TypeID.h"

#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace smlir {

class FunctionPass;

//===----------------------------------------------------------------------===//
// PreservedAnalyses
//===----------------------------------------------------------------------===//

/// The set of analyses a pass left intact. The pass manager invalidates
/// every cached analysis that is not in this set after the pass runs. A
/// pass may only preserve analyses whose cached roots it did not erase.
class PreservedAnalyses {
public:
  /// Nothing survives (the default for a transformation).
  static PreservedAnalyses none() { return PreservedAnalyses(); }
  /// Everything survives (analyses and passes that do not touch the IR).
  static PreservedAnalyses all() {
    PreservedAnalyses PA;
    PA.All = true;
    return PA;
  }

  template <typename AnalysisT>
  PreservedAnalyses &preserve() {
    return preserve(TypeID::get<AnalysisT>());
  }
  PreservedAnalyses &preserve(TypeID ID) {
    Preserved.insert(ID);
    return *this;
  }

  bool isAll() const { return All; }
  bool isPreserved(TypeID ID) const { return All || Preserved.count(ID); }

  /// Restricts this set to analyses preserved by both sets (used when one
  /// logical pass runs several times, e.g. once per function).
  void intersect(const PreservedAnalyses &Other) {
    if (Other.All)
      return;
    if (All) {
      *this = Other;
      return;
    }
    std::set<TypeID> Common;
    for (TypeID ID : Preserved)
      if (Other.Preserved.count(ID))
        Common.insert(ID);
    Preserved = std::move(Common);
  }

private:
  bool All = false;
  std::set<TypeID> Preserved;
};

/// Builds a PreservedAnalyses holding exactly the given analysis types;
/// `preserving<>()` is PreservedAnalyses::none().
template <typename... AnalysisTs>
PreservedAnalyses preserving() {
  PreservedAnalyses PA;
  (PA.preserve<AnalysisTs>(), ...);
  return PA;
}

//===----------------------------------------------------------------------===//
// PassResult
//===----------------------------------------------------------------------===//

/// Outcome of one pass execution: success/failure plus the analyses the
/// pass declares preserved, and an optional failure detail (container
/// passes use it to name the nested pass and function that failed).
/// Implicitly constructible from a LogicalResult (preserving nothing) so
/// `return success();` keeps working for passes that rebuild the IR
/// arbitrarily.
class PassResult {
public:
  /*implicit*/ PassResult(LogicalResult Result)
      : Result(Result), Preserved(PreservedAnalyses::none()) {}
  PassResult(LogicalResult Result, PreservedAnalyses Preserved,
             std::string Message = std::string())
      : Result(Result), Preserved(std::move(Preserved)),
        Message(std::move(Message)) {}

  bool succeeded() const { return Result.succeeded(); }
  bool failed() const { return Result.failed(); }
  const PreservedAnalyses &getPreserved() const { return Preserved; }
  const std::string &getMessage() const { return Message; }

private:
  LogicalResult Result;
  PreservedAnalyses Preserved;
  std::string Message;
};

//===----------------------------------------------------------------------===//
// AnalysisManager
//===----------------------------------------------------------------------===//

/// Caches analyses per (analysis type, root operation). Analyses are
/// constructed on demand with `AnalysisT(Operation *Root)` and must expose
/// a `static constexpr std::string_view AnalysisName` used in the hit/miss
/// report. After each pass the pass manager invalidates exactly the
/// analyses the pass did not declare preserved; preserved entries stay
/// cached across passes, which the statistics make observable.
class AnalysisManager {
public:
  /// Per-analysis-type query accounting for the pass-statistics report.
  struct QueryStats {
    std::string Name;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
  };

  template <typename AnalysisT>
  AnalysisT &get(Operation *Root) {
    static_assert(!std::string_view(AnalysisT::AnalysisName).empty(),
                  "analyses must declare a non-empty AnalysisName");
    TypeID ID = TypeID::get<AnalysisT>();
    Key K{ID, Root};
    auto It = Cache.find(K);
    QueryStats &S = Stats[ID];
    if (S.Name.empty())
      S.Name = AnalysisT::AnalysisName;
    if (It != Cache.end()) {
      ++S.Hits;
      return static_cast<Model<AnalysisT> *>(It->second.get())->Analysis;
    }
    ++S.Misses;
    It = Cache.emplace(K, std::make_unique<Model<AnalysisT>>(Root)).first;
    return static_cast<Model<AnalysisT> *>(It->second.get())->Analysis;
  }

  /// Drops every cached analysis whose type is not in \p Preserved.
  void invalidate(const PreservedAnalyses &Preserved) {
    if (Preserved.isAll())
      return;
    for (auto It = Cache.begin(); It != Cache.end();) {
      if (!Preserved.isPreserved(It->first.first))
        It = Cache.erase(It);
      else
        ++It;
    }
  }

  /// Drops every cached analysis rooted at \p Root (e.g. before erasing
  /// that operation).
  void invalidate(Operation *Root) {
    for (auto It = Cache.begin(); It != Cache.end();) {
      if (It->first.second == Root)
        It = Cache.erase(It);
      else
        ++It;
    }
  }

  void invalidateAll() { Cache.clear(); }

  /// Drops the cache and the query statistics (start of a pipeline run).
  void clear() {
    Cache.clear();
    Stats.clear();
  }

  size_t getCacheSize() const { return Cache.size(); }
  const std::map<TypeID, QueryStats> &getQueryStatistics() const {
    return Stats;
  }
  uint64_t getNumHits() const {
    uint64_t N = 0;
    for (const auto &[ID, S] : Stats)
      N += S.Hits;
    return N;
  }
  uint64_t getNumMisses() const {
    uint64_t N = 0;
    for (const auto &[ID, S] : Stats)
      N += S.Misses;
    return N;
  }

private:
  struct Concept {
    virtual ~Concept() = default;
  };
  template <typename AnalysisT>
  struct Model : Concept {
    explicit Model(Operation *Root) : Analysis(Root) {}
    AnalysisT Analysis;
  };

  using Key = std::pair<TypeID, Operation *>;
  struct KeyHash {
    size_t operator()(const Key &K) const {
      size_t H1 = std::hash<TypeID>()(K.first);
      size_t H2 = std::hash<Operation *>()(K.second);
      // Boost-style combine: plain XOR would collide for symmetric pairs.
      return H1 ^ (H2 + 0x9e3779b97f4a7c15ULL + (H1 << 6) + (H1 >> 2));
    }
  };
  std::unordered_map<Key, std::unique_ptr<Concept>, KeyHash> Cache;
  std::map<TypeID, QueryStats> Stats;
};

//===----------------------------------------------------------------------===//
// Pass
//===----------------------------------------------------------------------===//

/// Base class for all transformation passes.
class Pass {
public:
  Pass(std::string Name, std::string Argument)
      : Name(std::move(Name)), Argument(std::move(Argument)) {}
  virtual ~Pass();

  const std::string &getName() const { return Name; }
  /// Command-line style pass mnemonic, e.g. "detect-reduction".
  const std::string &getArgument() const { return Argument; }

  /// Runs this pass on \p Root. Failure aborts the pipeline; the returned
  /// preserved set bounds which cached analyses survive this pass.
  virtual PassResult runOnOperation(Operation *Root, AnalysisManager &AM) = 0;

  /// Non-null when this pass is a FunctionPass (used by the `func(...)`
  /// pipeline adaptor to dispatch straight to runOnFunction).
  virtual FunctionPass *asFunctionPass() { return nullptr; }

  /// The pass manager pushes its verify-each setting down through this
  /// hook so container passes keep per-pass verification for their nested
  /// pipelines; leaf passes ignore it.
  virtual void setNestedVerifier(bool Enable) { (void)Enable; }

  /// Prints this pass's element of a textual pipeline; the default is the
  /// mnemonic, nested pipelines print their children recursively.
  virtual void printPipelineElement(std::ostream &OS) const;

  /// Child passes of a nested pipeline element, or null for leaf passes
  /// (lets the report and the pipeline printer recurse).
  virtual const std::vector<std::unique_ptr<Pass>> *getNestedPasses() const {
    return nullptr;
  }

  /// Named counters reported by the pass manager when statistics are
  /// enabled.
  void incrementStatistic(const std::string &Stat, int64_t Delta = 1) {
    Statistics[Stat] += Delta;
  }
  const std::map<std::string, int64_t> &getStatistics() const {
    return Statistics;
  }

private:
  std::string Name;
  std::string Argument;
  std::map<std::string, int64_t> Statistics;
};

/// Convenience base for passes operating on every `func.func` in the
/// module, including functions nested in inner modules (the joint
/// host+device representation keeps device kernels in a nested `@kernels`
/// module).
class FunctionPass : public Pass {
public:
  using Pass::Pass;

  PassResult runOnOperation(Operation *Root, AnalysisManager &AM) final;
  FunctionPass *asFunctionPass() override { return this; }

  /// Runs on a single function.
  virtual PassResult runOnFunction(Operation *Func, AnalysisManager &AM) = 0;
};

/// Runs a nested pipeline over every `func.func` under the root: the
/// `func(...)` element of a textual pipeline. Each function flows through
/// the whole nested pipeline before the next function is visited, with
/// per-pass analysis invalidation honoring the nested preserved sets.
class FunctionPipelinePass : public Pass {
public:
  FunctionPipelinePass() : Pass("FunctionPipeline", "func") {}

  void addPass(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }
  const std::vector<std::unique_ptr<Pass>> &getPasses() const {
    return Passes;
  }

  PassResult runOnOperation(Operation *Root, AnalysisManager &AM) final;
  void printPipelineElement(std::ostream &OS) const override;
  const std::vector<std::unique_ptr<Pass>> *getNestedPasses() const override {
    return &Passes;
  }
  void setNestedVerifier(bool Enable) override {
    VerifyEach = Enable;
    for (auto &P : Passes)
      P->setNestedVerifier(Enable);
  }

  /// Wall time of each nested pass accumulated across every function of
  /// the last run (parallel to getPasses(); feeds the nested rows of
  /// PassManager::getTimingReport).
  const std::vector<double> &getNestedTimingsMs() const {
    return NestedTimingsMs;
  }

private:
  std::vector<std::unique_ptr<Pass>> Passes;
  std::vector<double> NestedTimingsMs;
  /// Mirrors the owning pass manager's verify-each setting: each function
  /// is re-verified after each nested pass, as it would be had the nested
  /// passes run at the top level.
  bool VerifyEach = true;
};

//===----------------------------------------------------------------------===//
// PassManager
//===----------------------------------------------------------------------===//

/// Runs a sequence of passes over a module with optional instrumentation.
class PassManager {
public:
  explicit PassManager(MLIRContext *Context) : Context(Context) {}

  MLIRContext *getContext() const { return Context; }

  void addPass(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  template <typename PassT, typename... Args>
  void addPass(Args &&...PassArgs) {
    Passes.push_back(std::make_unique<PassT>(std::forward<Args>(PassArgs)...));
  }

  /// Verify the IR after each pass (on by default).
  void enableVerifier(bool Enable = true) { VerifyEach = Enable; }
  /// Print the IR to stderr after each pass.
  void enableIRPrinting(bool Enable = true) { PrintAfterEach = Enable; }
  /// Print the IR to stderr before each pass.
  void enableIRPrintingBefore(bool Enable = true) { PrintBeforeEach = Enable; }
  /// Collect per-pass wall-clock timing.
  void enableTiming(bool Enable = true) { TimePasses = Enable; }

  /// Runs all passes on \p Root; stops and fails on the first pass failure
  /// or verification error, describing it in \p ErrorMessage when
  /// non-null.
  LogicalResult run(Operation *Root, std::string *ErrorMessage = nullptr);

  /// Human-readable timing/statistics report for the last run, including
  /// analysis cache hits/misses; passes the last run never reached are
  /// annotated "(not run)".
  std::string getReport() const;

  /// MLIR `-mlir-timing`-style nested wall-time report of the last run:
  /// total execution time, one row per top-level pass with its share, and
  /// indented rows for passes nested in `func(...)` pipelines (their
  /// times accumulated across all functions). Backs `smlir-opt --timing`.
  std::string getTimingReport() const;

  const std::vector<std::unique_ptr<Pass>> &getPasses() const {
    return Passes;
  }

  /// Analysis cache of the last run (statistics are reset by each run).
  const AnalysisManager &getAnalysisManager() const { return AM; }

private:
  MLIRContext *Context;
  std::vector<std::unique_ptr<Pass>> Passes;
  AnalysisManager AM;
  std::vector<double> TimingsMs;
  /// How many leading passes the last run actually executed.
  unsigned NumExecuted = 0;
  bool VerifyEach = true;
  bool PrintAfterEach = false;
  bool PrintBeforeEach = false;
  bool TimePasses = false;
};

} // namespace smlir

#endif // SMLIR_IR_PASS_H
