//===- Block.h - Blocks and regions -----------------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocks (sequences of operations with arguments) and regions (lists of
/// blocks nested under an operation). Control flow in this project is fully
/// structured (scf/affine), so most regions hold exactly one block.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_BLOCK_H
#define SMLIR_IR_BLOCK_H

#include "ir/Operation.h"
#include "ir/Value.h"

#include <iterator>
#include <memory>
#include <vector>

namespace smlir {

class Region;

/// A sequence of operations with block arguments. Operations are stored in
/// an intrusive doubly-linked list.
class Block {
public:
  Block() = default;
  ~Block();

  Block(const Block &) = delete;
  Block &operator=(const Block &) = delete;

  Region *getParent() const { return ParentRegion; }
  /// The operation owning the parent region, or null.
  Operation *getParentOp() const;

  //===------------------------------------------------------------------===//
  // Arguments
  //===------------------------------------------------------------------===//

  Value addArgument(Type Ty);
  Value getArgument(unsigned Index) const {
    assert(Index < Arguments.size() && "argument index out of range");
    return Value(Arguments[Index].get());
  }
  unsigned getNumArguments() const { return Arguments.size(); }
  std::vector<Value> getArguments() const;
  /// Removes the argument at \p Index (must be unused); reindexes the rest.
  void eraseArgument(unsigned Index);

  //===------------------------------------------------------------------===//
  // Operation list
  //===------------------------------------------------------------------===//

  /// Forward iterator over the operations of a block.
  class iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Operation *;
    using difference_type = std::ptrdiff_t;
    using pointer = Operation **;
    using reference = Operation *;

    iterator() = default;
    explicit iterator(Operation *Op) : Cur(Op) {}
    Operation *operator*() const { return Cur; }
    iterator &operator++() {
      Cur = Cur->getNextNode();
      return *this;
    }
    iterator operator++(int) {
      iterator Copy = *this;
      ++*this;
      return Copy;
    }
    bool operator==(const iterator &Other) const { return Cur == Other.Cur; }
    bool operator!=(const iterator &Other) const { return Cur != Other.Cur; }

  private:
    Operation *Cur = nullptr;
  };

  iterator begin() const { return iterator(FirstOp); }
  iterator end() const { return iterator(nullptr); }
  bool empty() const { return FirstOp == nullptr; }
  Operation *front() const { return FirstOp; }
  Operation *back() const { return LastOp; }
  unsigned getNumOperations() const;

  /// Appends \p Op (must be detached).
  void push_back(Operation *Op);
  /// Inserts \p Op (detached) before \p Before; appends if \p Before is
  /// null.
  void insertBefore(Operation *Before, Operation *Op);
  /// Unlinks \p Op from this block without deleting it.
  void remove(Operation *Op);

  /// The block terminator (last op, which must have the IsTerminator
  /// trait), or null for an empty/unterminated block.
  Operation *getTerminator() const;

private:
  friend class Region;

  Region *ParentRegion = nullptr;
  std::vector<std::unique_ptr<detail::BlockArgumentImpl>> Arguments;
  Operation *FirstOp = nullptr;
  Operation *LastOp = nullptr;
};

/// A list of blocks owned by an operation.
class Region {
public:
  explicit Region(Operation *ParentOp) : ParentOp(ParentOp) {}

  Operation *getParentOp() const { return ParentOp; }
  bool empty() const { return Blocks.empty(); }
  unsigned getNumBlocks() const { return Blocks.size(); }

  Block &front() const {
    assert(!Blocks.empty() && "front() on empty region");
    return *Blocks.front();
  }

  /// Appends a fresh block and returns it.
  Block &emplaceBlock();

  /// Ensures the region has an entry block and returns it.
  Block &getOrCreateEntryBlock() {
    return Blocks.empty() ? emplaceBlock() : front();
  }

  auto begin() const { return Blocks.begin(); }
  auto end() const { return Blocks.end(); }

  /// Removes all blocks (and their ops).
  void clear() { Blocks.clear(); }

  /// Moves all blocks of \p Other into this region (which must be empty).
  void takeBody(Region &Other);

private:
  Operation *ParentOp;
  std::vector<std::unique_ptr<Block>> Blocks;
};

} // namespace smlir

#endif // SMLIR_IR_BLOCK_H
