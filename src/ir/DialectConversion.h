//===- DialectConversion.h - Dialect conversion framework -------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dialect conversion framework (paper §II-B: "gradual lowering process
/// through dialect conversion and pattern rewriting"), mirroring MLIR's
/// ConversionTarget / TypeConverter / applyPartialConversion trio:
///
///  - TypeConverter: an ordered set of type-conversion rules plus
///    source/target materialization callbacks used to bridge converted and
///    unconverted values.
///  - ConversionTarget: declares which operations and dialects are legal,
///    illegal or dynamically legal after the conversion.
///  - ConversionPattern / OpConversionPattern<OpTy>: rewrite patterns that
///    receive their operands *remapped* through the conversion value
///    mapping (the operand adaptor), so a pattern always sees the
///    already-converted form of its inputs.
///  - ConversionPatternRewriter: a PatternRewriter that journals every
///    mutation (creation, erasure, replacement, operand/attribute updates,
///    block signature changes, region moves) so a failed pattern — or a
///    failed legalization — rolls the IR back to a byte-identical state.
///  - applyPartialConversion / applyFullConversion: the drivers. Partial
///    conversion legalizes every explicitly-illegal operation and lets
///    unknown operations remain; full conversion additionally requires
///    every remaining operation to be explicitly legal.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_DIALECTCONVERSION_H
#define SMLIR_IR_DIALECTCONVERSION_H

#include "ir/PatternMatch.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace smlir {

//===----------------------------------------------------------------------===//
// TypeConverter
//===----------------------------------------------------------------------===//

/// Converts types between a source and a target type system. Conversion
/// rules are tried newest-first; a rule returning std::nullopt passes to
/// the next rule, a null Type aborts the conversion. Register an identity
/// rule first so types no rule claims convert to themselves.
class TypeConverter {
public:
  /// One type conversion rule.
  using ConversionFn = std::function<std::optional<Type>(Type)>;
  /// Builds a value of \p ResultType from \p Input at \p Loc, or returns a
  /// null Value to let the next callback (or the default
  /// builtin.unrealized_conversion_cast) handle it.
  using MaterializationFn =
      std::function<Value(OpBuilder &, Type /*ResultType*/, Value /*Input*/,
                          Location)>;

  virtual ~TypeConverter();

  void addConversion(ConversionFn Fn) {
    Conversions.push_back(std::move(Fn));
  }
  /// Source materializations convert a *converted* value back to a source
  /// (original) type — used when an unconverted operation still needs the
  /// old type after conversion.
  void addSourceMaterialization(MaterializationFn Fn) {
    SourceMaterializations.push_back(std::move(Fn));
  }
  /// Target materializations convert a source value to a converted type —
  /// used when a pattern needs the new type for a value the conversion has
  /// not (yet) remapped.
  void addTargetMaterialization(MaterializationFn Fn) {
    TargetMaterializations.push_back(std::move(Fn));
  }

  /// Converts \p Ty; returns a null Type when no rule applies (or a rule
  /// failed).
  Type convertType(Type Ty) const;

  /// Converts every type in \p Types into \p Results; fails if any type
  /// has no conversion.
  LogicalResult convertTypes(const std::vector<Type> &Types,
                             std::vector<Type> &Results) const;

  /// A type is legal iff it converts to itself.
  bool isLegal(Type Ty) const { return convertType(Ty) == Ty; }
  /// A signature is legal iff all input and result types are legal.
  bool isSignatureLegal(FunctionType Ty) const;

  /// Materializes a conversion of \p Input to \p ResultType using the
  /// registered source/target callbacks, falling back to a
  /// `builtin.unrealized_conversion_cast` operation.
  Value materializeSourceConversion(OpBuilder &Builder, Location Loc,
                                    Type ResultType, Value Input) const;
  Value materializeTargetConversion(OpBuilder &Builder, Location Loc,
                                    Type ResultType, Value Input) const;

private:
  Value materialize(const std::vector<MaterializationFn> &Callbacks,
                    OpBuilder &Builder, Location Loc, Type ResultType,
                    Value Input) const;

  std::vector<ConversionFn> Conversions;
  std::vector<MaterializationFn> SourceMaterializations;
  std::vector<MaterializationFn> TargetMaterializations;
};

//===----------------------------------------------------------------------===//
// ConversionTarget
//===----------------------------------------------------------------------===//

/// Describes the legality of operations and dialects after a conversion.
class ConversionTarget {
public:
  /// Decides dynamic legality per operation instance.
  using DynamicLegalityFn = std::function<bool(Operation *)>;

  enum class LegalizationAction { Legal, Dynamic, Illegal };

  /// Marks every op of \p Name legal / illegal / dynamically legal.
  void addLegalOp(std::string_view Name) {
    setOpAction(Name, LegalizationAction::Legal, nullptr);
  }
  void addIllegalOp(std::string_view Name) {
    setOpAction(Name, LegalizationAction::Illegal, nullptr);
  }
  void addDynamicallyLegalOp(std::string_view Name, DynamicLegalityFn Fn) {
    setOpAction(Name, LegalizationAction::Dynamic, std::move(Fn));
  }
  template <typename OpTy>
  void addLegalOp() {
    addLegalOp(OpTy::getOperationName());
  }
  template <typename OpTy>
  void addIllegalOp() {
    addIllegalOp(OpTy::getOperationName());
  }
  template <typename OpTy>
  void addDynamicallyLegalOp(DynamicLegalityFn Fn) {
    addDynamicallyLegalOp(OpTy::getOperationName(), std::move(Fn));
  }

  /// Marks a whole dialect (by namespace, e.g. "arith") legal / illegal /
  /// dynamically legal. Op-specific actions take precedence.
  void addLegalDialect(std::string_view Name) {
    setDialectAction(Name, LegalizationAction::Legal, nullptr);
  }
  void addIllegalDialect(std::string_view Name) {
    setDialectAction(Name, LegalizationAction::Illegal, nullptr);
  }
  void addDynamicallyLegalDialect(std::string_view Name,
                                  DynamicLegalityFn Fn) {
    setDialectAction(Name, LegalizationAction::Dynamic, std::move(Fn));
  }
  template <typename... Names>
  void addLegalDialects(Names... DialectNames) {
    (addLegalDialect(DialectNames), ...);
  }

  /// Fallback legality for operations with no op- or dialect-level action.
  void markUnknownOpDynamicallyLegal(DynamicLegalityFn Fn) {
    UnknownOpFn = std::move(Fn);
  }

  /// Returns the legality of \p Op: true (legal), false (must be
  /// converted), or std::nullopt when no action covers it (such ops may
  /// remain under partial conversion but fail full conversion).
  std::optional<bool> isLegal(Operation *Op) const;

private:
  struct Action {
    LegalizationAction Kind = LegalizationAction::Legal;
    DynamicLegalityFn Fn;
  };

  void setOpAction(std::string_view Name, LegalizationAction Kind,
                   DynamicLegalityFn Fn) {
    OpActions[std::string(Name)] = {Kind, std::move(Fn)};
  }
  void setDialectAction(std::string_view Name, LegalizationAction Kind,
                        DynamicLegalityFn Fn) {
    DialectActions[std::string(Name)] = {Kind, std::move(Fn)};
  }

  std::map<std::string, Action, std::less<>> OpActions;
  std::map<std::string, Action, std::less<>> DialectActions;
  DynamicLegalityFn UnknownOpFn;
};

//===----------------------------------------------------------------------===//
// ConversionPatternRewriter
//===----------------------------------------------------------------------===//

namespace detail {
class ConversionJournal;
} // namespace detail

/// PatternRewriter used during dialect conversion. Every mutation made
/// through this rewriter is journaled; the conversion driver rolls the
/// journal back when a pattern or a legalization fails, restoring the IR
/// exactly (same operations, same order, same operands and attributes).
class ConversionPatternRewriter : public PatternRewriter {
public:
  ConversionPatternRewriter(MLIRContext *Context,
                            const TypeConverter *Converter);
  ~ConversionPatternRewriter() override;

  //===------------------------------------------------------------------===//
  // Journaled mutations
  //===------------------------------------------------------------------===//

  Operation *insert(Operation *Op) override;
  /// Unlinks \p Op; the operation is deleted only when the conversion
  /// succeeds (so rollback can reinsert it). Remaining uses of its results
  /// are rewired through the conversion mapping on success.
  void eraseOp(Operation *Op) override;
  /// Maps \p Op's results to \p NewValues and erases it. Uses are rewired
  /// lazily: converted ops see the new values through their adaptor,
  /// unconverted ops are patched (with materializations if types differ)
  /// when the conversion commits.
  void replaceOp(Operation *Op, const std::vector<Value> &NewValues) override;

  /// Journaled operand update on an operation left in place.
  void updateOperand(Operation *Op, unsigned Index, Value NewValue);
  /// Journaled attribute update/removal.
  void updateAttribute(Operation *Op, std::string_view Name, Attribute Attr);
  void removeAttribute(Operation *Op, std::string_view Name);

  /// Replaces the arguments of \p B with fresh arguments of \p NewTypes
  /// (same count, 1:1). Old arguments are remapped to the new ones and
  /// erased when the conversion commits.
  void applySignatureConversion(Block *B, const std::vector<Type> &NewTypes);

  /// Moves the blocks of \p From into \p To (which must be empty), e.g.
  /// when swapping an `affine.for` for an `scf.for` around the same body.
  void moveRegionBody(Region &From, Region &To);

  //===------------------------------------------------------------------===//
  // Conversion mapping
  //===------------------------------------------------------------------===//

  /// Returns the current conversion of \p V (following chains), or \p V
  /// itself when unconverted.
  Value getRemapped(Value V) const;
  std::vector<Value> getRemapped(const std::vector<Value> &Vals) const;

  const TypeConverter *getTypeConverter() const { return Converter; }

  //===------------------------------------------------------------------===//
  // Driver interface
  //===------------------------------------------------------------------===//

  /// Journal position; rollbackTo(checkpoint()) undoes everything after.
  size_t checkpoint() const;
  /// Undoes all journaled mutations after \p Checkpoint, newest first.
  void rollbackTo(size_t Checkpoint);
  /// Operations created after \p Checkpoint (for recursive legalization).
  std::vector<Operation *> getCreatedOps(size_t Checkpoint) const;
  /// True when \p Op was erased/replaced during this conversion.
  bool isErased(Operation *Op) const;
  /// Number of remaining uses that will need a source materialization at
  /// commit time (live users of a replaced value whose replacement has a
  /// different type). Full conversion treats a non-zero count as a
  /// legalization failure — the casts it would create are never
  /// legalized, so they must not escape the target check.
  unsigned countPendingMaterializations() const;
  /// Commits the conversion: rewires remaining uses of replaced values
  /// (inserting source materializations on type mismatch), erases
  /// converted-away block arguments, and deletes all erased operations.
  void finalize();

private:
  const TypeConverter *Converter;
  std::unique_ptr<detail::ConversionJournal> Journal;
};

//===----------------------------------------------------------------------===//
// Conversion patterns
//===----------------------------------------------------------------------===//

/// Remapped operands of the operation being converted.
class ConversionValueAdaptor {
public:
  explicit ConversionValueAdaptor(const std::vector<Value> &Operands)
      : Operands(Operands) {}

  const std::vector<Value> &getOperands() const { return Operands; }
  Value getOperand(unsigned Index) const {
    assert(Index < Operands.size() && "adaptor operand out of range");
    return Operands[Index];
  }
  unsigned size() const { return Operands.size(); }

private:
  const std::vector<Value> &Operands;
};

/// A rewrite pattern participating in dialect conversion: it receives the
/// operands of the matched operation remapped through the conversion value
/// mapping. Conversion patterns only run under the conversion drivers.
class ConversionPattern : public RewritePattern {
public:
  ConversionPattern(std::string RootName, unsigned Benefit = 1,
                    const TypeConverter *Converter = nullptr)
      : RewritePattern(std::move(RootName), Benefit), Converter(Converter) {}

  const TypeConverter *getTypeConverter() const { return Converter; }

  /// Converts \p Op given its remapped \p Operands.
  virtual LogicalResult
  matchAndRewrite(Operation *Op, const std::vector<Value> &Operands,
                  ConversionPatternRewriter &Rewriter) const = 0;

  /// Conversion patterns cannot run under the greedy driver.
  LogicalResult matchAndRewrite(Operation *,
                                PatternRewriter &) const final {
    return failure();
  }

private:
  const TypeConverter *Converter;
};

/// Typed conversion pattern anchored on \p SourceOp, with an operand
/// adaptor (the project's stand-in for generated OpAdaptor classes).
template <typename SourceOp>
class OpConversionPattern : public ConversionPattern {
public:
  using OpAdaptor = ConversionValueAdaptor;

  explicit OpConversionPattern(const TypeConverter *Converter = nullptr,
                               unsigned Benefit = 1)
      : ConversionPattern(SourceOp::getOperationName(), Benefit, Converter) {}

  LogicalResult
  matchAndRewrite(Operation *Op, const std::vector<Value> &Operands,
                  ConversionPatternRewriter &Rewriter) const final {
    return matchAndRewrite(SourceOp::cast(Op), OpAdaptor(Operands), Rewriter);
  }

  /// Converts \p Op; \p Adaptor carries the remapped operands.
  virtual LogicalResult matchAndRewrite(SourceOp Op, OpAdaptor Adaptor,
                                        ConversionPatternRewriter &Rewriter)
      const = 0;
};

//===----------------------------------------------------------------------===//
// Conversion drivers
//===----------------------------------------------------------------------===//

/// Legalizes every explicitly-illegal operation under (and including)
/// \p Root using \p Patterns; operations the target does not cover may
/// remain. On failure the IR is rolled back unchanged.
LogicalResult applyPartialConversion(Operation *Root,
                                     const ConversionTarget &Target,
                                     const RewritePatternSet &Patterns,
                                     const TypeConverter *Converter = nullptr,
                                     std::string *ErrorMessage = nullptr);

/// Like applyPartialConversion, but additionally fails (and rolls back) if
/// any operation remains that the target does not declare legal.
LogicalResult applyFullConversion(Operation *Root,
                                  const ConversionTarget &Target,
                                  const RewritePatternSet &Patterns,
                                  const TypeConverter *Converter = nullptr,
                                  std::string *ErrorMessage = nullptr);

} // namespace smlir

#endif // SMLIR_IR_DIALECTCONVERSION_H
