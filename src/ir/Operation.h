//===- Operation.h - IR operations ------------------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic `Operation` class: named, attribute-carrying instructions
/// with operands, results and nested regions, plus the `AbstractOperation`
/// registry entry carrying per-op hooks (verifier, folder, memory effects)
/// and traits. Nesting regions is what lets this project represent SYCL
/// host and device code in one module (paper §III).
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_OPERATION_H
#define SMLIR_IR_OPERATION_H

#include "ir/Attributes.h"
#include "ir/Value.h"
#include "support/LogicalResult.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace smlir {

class Block;
class Dialect;
class MLIRContext;
class Operation;
class Region;

//===----------------------------------------------------------------------===//
// Location
//===----------------------------------------------------------------------===//

/// A lightweight source location: an interned string (file:line or a
/// symbolic description). Unknown locations print as `?`.
class Location {
public:
  Location() = default;
  explicit Location(const std::string *Str) : Str(Str) {}

  static Location unknown(MLIRContext *Context);
  static Location get(MLIRContext *Context, std::string_view Desc);

  const std::string &str() const;
  bool isUnknown() const { return Str == nullptr || str() == "?"; }

private:
  const std::string *Str = nullptr;
};

//===----------------------------------------------------------------------===//
// Traits and memory effects
//===----------------------------------------------------------------------===//

/// Operation traits, stored as a bitmask on AbstractOperation.
enum class OpTrait : uint64_t {
  None = 0,
  /// Terminates its block (func.return, scf.yield, ...).
  IsTerminator = 1 << 0,
  /// No memory effects; freely speculatable, CSE-able and DCE-able.
  Pure = 1 << 1,
  /// Yields a work-item dependent (non-uniform) value; consumed by the
  /// Uniformity Analysis (paper §V-C).
  NonUniformSource = 1 << 2,
  /// Materializes a constant from its `value` attribute.
  ConstantLike = 1 << 3,
  /// Memory effects are those of the ops nested in its regions (scf.if/for).
  RecursiveMemoryEffects = 1 << 4,
  /// Regions may not use values defined above (func.func, module).
  IsolatedFromAbove = 1 << 5,
  /// Defines a symbol via a `sym_name` attribute.
  Symbol = 1 << 6,
  /// Holds a symbol table in its single region (module).
  SymbolTable = 1 << 7,
};

/// The kind of a memory effect an operation has on a value.
enum class EffectKind { Read, Write, Allocate, Free };

/// One memory effect instance: \p Kind on \p Val. A null value denotes an
/// effect on an unspecified resource.
struct MemoryEffect {
  EffectKind Kind;
  Value Val;
};

/// Result of a fold attempt: either an existing Value or a constant
/// Attribute (materialized by the canonicalizer).
struct OpFoldResult {
  OpFoldResult() = default;
  /*implicit*/ OpFoldResult(Attribute Attr) : Attr(Attr) {}
  /*implicit*/ OpFoldResult(Value Val) : Val(Val) {}

  explicit operator bool() const { return static_cast<bool>(Attr) || static_cast<bool>(Val); }

  Attribute Attr;
  Value Val;
};

//===----------------------------------------------------------------------===//
// AbstractOperation
//===----------------------------------------------------------------------===//

/// Registered, per-op-kind metadata: name, traits and behavioral hooks.
class AbstractOperation {
public:
  using VerifyFn = LogicalResult (*)(Operation *);
  using FoldFn = OpFoldResult (*)(Operation *,
                                  const std::vector<Attribute> &);
  using EffectsFn = void (*)(Operation *, std::vector<MemoryEffect> &);

  AbstractOperation(std::string Name, Dialect *OpDialect, uint64_t Traits,
                    VerifyFn Verify, FoldFn Fold, EffectsFn Effects)
      : Name(std::move(Name)), OpDialect(OpDialect), Traits(Traits),
        Verify(Verify), Fold(Fold), Effects(Effects) {}

  const std::string &getName() const { return Name; }
  Dialect *getDialect() const { return OpDialect; }
  bool hasTrait(OpTrait Trait) const {
    return Traits & static_cast<uint64_t>(Trait);
  }
  /// True if the op declares its memory effects (via Pure or an effects
  /// hook); false means effects are unknown and must be treated
  /// conservatively.
  bool hasDefinedEffects() const {
    return hasTrait(OpTrait::Pure) || Effects != nullptr ||
           hasTrait(OpTrait::RecursiveMemoryEffects) ||
           hasTrait(OpTrait::IsTerminator);
  }

  VerifyFn getVerifyFn() const { return Verify; }
  FoldFn getFoldFn() const { return Fold; }
  EffectsFn getEffectsFn() const { return Effects; }

private:
  std::string Name;
  Dialect *OpDialect;
  uint64_t Traits;
  VerifyFn Verify;
  FoldFn Fold;
  EffectsFn Effects;
};

/// The name of an operation, always resolved to a registered
/// AbstractOperation.
class OperationName {
public:
  OperationName() = default;
  /*implicit*/ OperationName(const AbstractOperation *Abstract)
      : Abstract(Abstract) {}

  const std::string &getStringRef() const { return Abstract->getName(); }
  const AbstractOperation *getAbstractOperation() const { return Abstract; }
  bool operator==(const OperationName &Other) const {
    return Abstract == Other.Abstract;
  }

private:
  const AbstractOperation *Abstract = nullptr;
};

//===----------------------------------------------------------------------===//
// IRMapping
//===----------------------------------------------------------------------===//

/// Maps original values to replacement values during cloning.
class IRMapping {
public:
  void map(Value From, Value To) { Mapping[From.getImpl()] = To; }
  /// Returns the mapped value, or \p From itself if unmapped.
  Value lookupOrSelf(Value From) const {
    auto It = Mapping.find(From.getImpl());
    return It == Mapping.end() ? From : It->second;
  }
  bool contains(Value From) const {
    return Mapping.find(From.getImpl()) != Mapping.end();
  }

private:
  std::map<detail::ValueImpl *, Value> Mapping;
};

//===----------------------------------------------------------------------===//
// OperationState
//===----------------------------------------------------------------------===//

/// Aggregates everything needed to create an Operation; filled in by the
/// static `build` methods of concrete ops.
struct OperationState {
  OperationState(Location Loc, std::string Name)
      : Loc(Loc), Name(std::move(Name)) {}

  Location Loc;
  std::string Name;
  std::vector<Value> Operands;
  std::vector<Type> Types;
  std::vector<std::pair<std::string, Attribute>> Attributes;
  unsigned NumRegions = 0;

  void addOperands(std::initializer_list<Value> Vals) {
    Operands.insert(Operands.end(), Vals.begin(), Vals.end());
  }
  void addOperands(const std::vector<Value> &Vals) {
    Operands.insert(Operands.end(), Vals.begin(), Vals.end());
  }
  void addOperand(Value Val) { Operands.push_back(Val); }
  void addTypes(std::initializer_list<Type> Tys) {
    Types.insert(Types.end(), Tys.begin(), Tys.end());
  }
  void addTypes(const std::vector<Type> &Tys) {
    Types.insert(Types.end(), Tys.begin(), Tys.end());
  }
  void addType(Type Ty) { Types.push_back(Ty); }
  void addAttribute(std::string Name, Attribute Attr) {
    Attributes.emplace_back(std::move(Name), Attr);
  }
  void addRegion() { ++NumRegions; }
  void addRegions(unsigned Count) { NumRegions += Count; }
};

//===----------------------------------------------------------------------===//
// Operation
//===----------------------------------------------------------------------===//

/// A generic IR operation. Owns its operands, results, attributes and
/// nested regions; lives in an intrusive list within a Block.
class Operation {
public:
  /// Creates a detached operation from \p State. The op name must be
  /// registered in \p Context.
  static Operation *create(MLIRContext *Context, const OperationState &State);

  ~Operation();

  MLIRContext *getContext() const { return Context; }
  OperationName getName() const { return Name; }
  Location getLoc() const { return Loc; }
  bool hasTrait(OpTrait Trait) const {
    return Name.getAbstractOperation()->hasTrait(Trait);
  }

  //===------------------------------------------------------------------===//
  // Operands
  //===------------------------------------------------------------------===//

  unsigned getNumOperands() const { return Operands.size(); }
  Value getOperand(unsigned Index) const {
    assert(Index < Operands.size() && "operand index out of range");
    return Operands[Index]->get();
  }
  void setOperand(unsigned Index, Value Val) {
    assert(Index < Operands.size() && "operand index out of range");
    Operands[Index]->set(Val);
  }
  OpOperand &getOpOperand(unsigned Index) { return *Operands[Index]; }
  std::vector<Value> getOperands() const;
  /// Appends an operand (used by ops with variadic operand lists).
  void addOperand(Value Val);
  /// Removes the operand at \p Index.
  void eraseOperand(unsigned Index);

  //===------------------------------------------------------------------===//
  // Results
  //===------------------------------------------------------------------===//

  unsigned getNumResults() const { return Results.size(); }
  Value getResult(unsigned Index) const {
    assert(Index < Results.size() && "result index out of range");
    return Value(Results[Index].get());
  }
  std::vector<Value> getResults() const;
  Type getResultType(unsigned Index) const {
    return getResult(Index).getType();
  }
  /// Returns true if no result has any use.
  bool use_empty() const;
  /// Replaces all uses of this op's results with \p NewValues (same arity).
  void replaceAllUsesWith(const std::vector<Value> &NewValues);

  //===------------------------------------------------------------------===//
  // Attributes
  //===------------------------------------------------------------------===//

  Attribute getAttr(std::string_view AttrName) const;
  template <typename AttrT>
  AttrT getAttrOfType(std::string_view AttrName) const {
    Attribute Attr = getAttr(AttrName);
    return Attr ? Attr.dyn_cast<AttrT>() : AttrT();
  }
  bool hasAttr(std::string_view AttrName) const {
    return static_cast<bool>(getAttr(AttrName));
  }
  void setAttr(std::string_view AttrName, Attribute Attr);
  void removeAttr(std::string_view AttrName);
  const std::map<std::string, Attribute, std::less<>> &getAttrs() const {
    return Attrs;
  }

  //===------------------------------------------------------------------===//
  // Regions and block placement
  //===------------------------------------------------------------------===//

  unsigned getNumRegions() const { return Regions.size(); }
  Region &getRegion(unsigned Index) {
    assert(Index < Regions.size() && "region index out of range");
    return *Regions[Index];
  }
  const std::vector<std::unique_ptr<Region>> &getRegions() const {
    return Regions;
  }

  Block *getBlock() const { return ParentBlock; }
  /// The region containing this operation's block, or null if detached.
  Region *getParentRegion() const;
  /// The operation owning the region containing this op, or null.
  Operation *getParentOp() const;
  /// Walks parents until an op named \p OpName is found; null if none.
  Operation *getParentOfName(std::string_view OpName) const;
  /// Returns true if this op is a (transitive) parent of \p Other.
  bool isProperAncestor(Operation *Other) const;

  Operation *getNextNode() const { return NextOp; }
  Operation *getPrevNode() const { return PrevOp; }

  /// Unlinks this op from its block without deleting it.
  void remove();
  /// Unlinks and deletes this op. Results must be unused.
  void erase();
  /// Unlinks this op and inserts it before \p Other.
  void moveBefore(Operation *Other);
  /// Unlinks this op and inserts it after \p Other.
  void moveAfter(Operation *Other);
  /// Drops all operand references (used during bulk teardown).
  void dropAllReferences();

  /// Deep-clones this operation (attributes, regions, nested ops). Operands
  /// are remapped through \p Mapper; the clone's results are recorded in
  /// \p Mapper. The clone is returned detached.
  Operation *clone(IRMapping &Mapper) const;

  //===------------------------------------------------------------------===//
  // Hooks
  //===------------------------------------------------------------------===//

  /// Runs the registered verifier hook for this op (not recursive; use
  /// verify(Operation*) from Verifier.h for recursive verification).
  LogicalResult verifyInvariants();

  /// Attempts to fold this op given constant operand values (null entries
  /// for non-constant operands). Only single-result ops fold.
  OpFoldResult fold(const std::vector<Attribute> &ConstOperands);

  /// Collects the memory effects of this op. Returns false if effects are
  /// unknown (no hook registered and not Pure).
  bool getEffects(std::vector<MemoryEffect> &Effects) const;

  /// True if the op is free of memory effects (Pure, or empty effect list,
  /// considering recursive effects for region-holding ops).
  bool isMemoryEffectFree() const;

  //===------------------------------------------------------------------===//
  // Walking and printing
  //===------------------------------------------------------------------===//

  /// Post-order walk over this op and all nested ops. The callback may
  /// erase the op it is given.
  void walk(const std::function<void(Operation *)> &Callback);

  /// Post-order walk filtered to ops castable to OpTy.
  template <typename OpTy>
  void walk(const std::function<void(OpTy)> &Callback) {
    walk([&](Operation *Op) {
      if (auto Concrete = OpTy::dyn_cast(Op))
        Callback(Concrete);
    });
  }

  void print(std::ostream &OS) const;
  std::string str() const;
  void dump() const;

  /// Member-template casting to concrete op wrappers.
  template <typename OpTy>
  bool isa() const {
    return OpTy::classof(const_cast<Operation *>(this));
  }

private:
  Operation(MLIRContext *Context, OperationName Name, Location Loc);

  friend class Block;

  MLIRContext *Context;
  OperationName Name;
  Location Loc;
  std::vector<std::unique_ptr<OpOperand>> Operands;
  std::vector<std::unique_ptr<detail::OpResultImpl>> Results;
  std::map<std::string, Attribute, std::less<>> Attrs;
  std::vector<std::unique_ptr<Region>> Regions;

  Block *ParentBlock = nullptr;
  Operation *PrevOp = nullptr;
  Operation *NextOp = nullptr;
};

} // namespace smlir

#endif // SMLIR_IR_OPERATION_H
