//===- Value.h - SSA values and use-def chains ------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SSA values (operation results and block arguments) with full use-def
/// chains. `Value` is a value-semantic handle over the underlying impl, as
/// in MLIR.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_VALUE_H
#define SMLIR_IR_VALUE_H

#include "ir/Types.h"

#include <cassert>
#include <vector>

namespace smlir {

class Block;
class Operation;
class OpOperand;

namespace detail {

/// Underlying storage for an SSA value.
struct ValueImpl {
  enum class Kind { OpResult, BlockArgument };

  ValueImpl(Kind ValueKind, Type Ty) : ValueKind(ValueKind), Ty(Ty) {}
  virtual ~ValueImpl() = default;

  Kind ValueKind;
  Type Ty;
  /// All operands currently using this value.
  std::vector<OpOperand *> Uses;
};

/// A result of an operation.
struct OpResultImpl : ValueImpl {
  OpResultImpl(Type Ty, Operation *Owner, unsigned Index)
      : ValueImpl(Kind::OpResult, Ty), Owner(Owner), Index(Index) {}

  Operation *Owner;
  unsigned Index;

  static bool classof(const ValueImpl *V) {
    return V->ValueKind == Kind::OpResult;
  }
};

/// An argument of a block (including loop induction variables and
/// iteration arguments of structured loops).
struct BlockArgumentImpl : ValueImpl {
  BlockArgumentImpl(Type Ty, Block *Owner, unsigned Index)
      : ValueImpl(Kind::BlockArgument, Ty), Owner(Owner), Index(Index) {}

  Block *Owner;
  unsigned Index;

  static bool classof(const ValueImpl *V) {
    return V->ValueKind == Kind::BlockArgument;
  }
};

} // namespace detail

/// Value-semantic handle to an SSA value. A default-constructed Value is
/// null.
class Value {
public:
  Value() = default;
  /*implicit*/ Value(detail::ValueImpl *Impl) : Impl(Impl) {}

  explicit operator bool() const { return Impl != nullptr; }
  bool operator==(Value Other) const { return Impl == Other.Impl; }
  bool operator!=(Value Other) const { return Impl != Other.Impl; }
  bool operator<(Value Other) const { return Impl < Other.Impl; }

  Type getType() const {
    assert(Impl && "null value");
    return Impl->Ty;
  }

  /// Returns the defining operation if this is an OpResult, null otherwise.
  Operation *getDefiningOp() const;

  /// Returns the block owning this value: the defining op's block for
  /// results, the owner block for block arguments.
  Block *getParentBlock() const;

  bool isBlockArgument() const {
    return Impl->ValueKind == detail::ValueImpl::Kind::BlockArgument;
  }
  bool isOpResult() const {
    return Impl->ValueKind == detail::ValueImpl::Kind::OpResult;
  }

  /// For block arguments: the argument index; for op results: the result
  /// index.
  unsigned getIndex() const;

  /// Returns the block owning this block argument (asserts otherwise).
  Block *getOwnerBlock() const;

  const std::vector<OpOperand *> &getUses() const { return Impl->Uses; }
  bool use_empty() const { return Impl->Uses.empty(); }
  bool hasOneUse() const { return Impl->Uses.size() == 1; }
  unsigned getNumUses() const { return Impl->Uses.size(); }

  /// Replaces every use of this value with \p NewValue.
  void replaceAllUsesWith(Value NewValue);

  detail::ValueImpl *getImpl() const { return Impl; }

private:
  detail::ValueImpl *Impl = nullptr;
};

/// A use of a Value by an Operation; the link in the use-def chain.
/// OpOperands are owned by operations and have stable addresses.
class OpOperand {
public:
  OpOperand(Operation *Owner, unsigned Index, Value Val)
      : Owner(Owner), Index(Index) {
    set(Val);
  }
  ~OpOperand() { drop(); }

  OpOperand(const OpOperand &) = delete;
  OpOperand &operator=(const OpOperand &) = delete;

  Operation *getOwner() const { return Owner; }
  unsigned getOperandNumber() const { return Index; }
  Value get() const { return Val; }

  /// Points this operand at \p NewValue, maintaining use lists.
  void set(Value NewValue) {
    drop();
    Val = NewValue;
    if (Val)
      Val.getImpl()->Uses.push_back(this);
  }

private:
  void drop() {
    if (!Val)
      return;
    auto &Uses = Val.getImpl()->Uses;
    for (auto It = Uses.begin(); It != Uses.end(); ++It) {
      if (*It == this) {
        Uses.erase(It);
        break;
      }
    }
    Val = Value();
  }

  Operation *Owner;
  unsigned Index;
  Value Val;
};

} // namespace smlir

namespace std {
template <>
struct hash<smlir::Value> {
  size_t operator()(const smlir::Value &V) const {
    return hash<void *>()(static_cast<void *>(V.getImpl()));
  }
};
} // namespace std

#endif // SMLIR_IR_VALUE_H
