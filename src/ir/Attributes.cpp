//===- Attributes.cpp - IR attribute system -------------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Attributes.h"

#include "ir/MLIRContext.h"

#include <cmath>
#include <limits>
#include <sstream>

using namespace smlir;

//===----------------------------------------------------------------------===//
// Attribute
//===----------------------------------------------------------------------===//

MLIRContext *Attribute::getContext() const {
  assert(Impl && "null attribute");
  return Impl->Context;
}

TypeID Attribute::getTypeID() const {
  assert(Impl && "null attribute");
  return Impl->ID;
}

const std::string &Attribute::str() const {
  assert(Impl && "null attribute");
  return Impl->Key;
}

void Attribute::print(std::ostream &OS) const {
  OS << (Impl ? Impl->Key : std::string("<<null attribute>>"));
}

//===----------------------------------------------------------------------===//
// Storage classes
//===----------------------------------------------------------------------===//

namespace {

struct IntegerAttrStorage : detail::AttributeStorage {
  IntegerAttrStorage(MLIRContext *Context, std::string Key, Type Ty,
                     int64_t Value)
      : AttributeStorage(TypeID::get<IntegerAttrStorage>(), Context,
                         std::move(Key)),
        Ty(Ty), Value(Value) {}
  Type Ty;
  int64_t Value;
};

struct FloatAttrStorage : detail::AttributeStorage {
  FloatAttrStorage(MLIRContext *Context, std::string Key, Type Ty,
                   double Value)
      : AttributeStorage(TypeID::get<FloatAttrStorage>(), Context,
                         std::move(Key)),
        Ty(Ty), Value(Value) {}
  Type Ty;
  double Value;
};

struct StringAttrStorage : detail::AttributeStorage {
  StringAttrStorage(MLIRContext *Context, std::string Key, std::string Value)
      : AttributeStorage(TypeID::get<StringAttrStorage>(), Context,
                         std::move(Key)),
        Value(std::move(Value)) {}
  std::string Value;
};

struct TypeAttrStorage : detail::AttributeStorage {
  TypeAttrStorage(MLIRContext *Context, std::string Key, Type Ty)
      : AttributeStorage(TypeID::get<TypeAttrStorage>(), Context,
                         std::move(Key)),
        Ty(Ty) {}
  Type Ty;
};

struct ArrayAttrStorage : detail::AttributeStorage {
  ArrayAttrStorage(MLIRContext *Context, std::string Key,
                   std::vector<Attribute> Elements)
      : AttributeStorage(TypeID::get<ArrayAttrStorage>(), Context,
                         std::move(Key)),
        Elements(std::move(Elements)) {}
  std::vector<Attribute> Elements;
};

struct SymbolRefAttrStorage : detail::AttributeStorage {
  SymbolRefAttrStorage(MLIRContext *Context, std::string Key,
                       std::vector<std::string> Path)
      : AttributeStorage(TypeID::get<SymbolRefAttrStorage>(), Context,
                         std::move(Key)),
        Path(std::move(Path)) {}
  std::vector<std::string> Path;
};

struct UnitAttrStorage : detail::AttributeStorage {
  UnitAttrStorage(MLIRContext *Context, std::string Key)
      : AttributeStorage(TypeID::get<UnitAttrStorage>(), Context,
                         std::move(Key)) {}
};

} // namespace

//===----------------------------------------------------------------------===//
// IntegerAttr
//===----------------------------------------------------------------------===//

IntegerAttr IntegerAttr::get(Type Ty, int64_t Value) {
  MLIRContext *Context = Ty.getContext();
  std::string Key = std::to_string(Value) + " : " + Ty.str();
  auto *Storage = Context->getAttributeStorage(Key, [&] {
    return std::make_unique<IntegerAttrStorage>(Context, Key, Ty, Value);
  });
  return IntegerAttr(Storage);
}

int64_t IntegerAttr::getValue() const {
  return static_cast<const IntegerAttrStorage *>(Impl)->Value;
}

Type IntegerAttr::getType() const {
  return static_cast<const IntegerAttrStorage *>(Impl)->Ty;
}

bool IntegerAttr::classof(Attribute Attr) {
  return Attr.getTypeID() == TypeID::get<IntegerAttrStorage>();
}

//===----------------------------------------------------------------------===//
// FloatAttr
//===----------------------------------------------------------------------===//

/// Prints \p Value so that it parses back to the identical double.
static std::string printFloatExact(double Value) {
  std::ostringstream OS;
  OS.precision(std::numeric_limits<double>::max_digits10);
  OS << Value;
  std::string Text = OS.str();
  // Ensure the token is recognizable as a float literal.
  if (Text.find_first_of(".eE") == std::string::npos &&
      Text.find("inf") == std::string::npos &&
      Text.find("nan") == std::string::npos)
    Text += ".0";
  return Text;
}

FloatAttr FloatAttr::get(Type Ty, double Value) {
  MLIRContext *Context = Ty.getContext();
  std::string Key = printFloatExact(Value) + " : " + Ty.str();
  auto *Storage = Context->getAttributeStorage(Key, [&] {
    return std::make_unique<FloatAttrStorage>(Context, Key, Ty, Value);
  });
  return FloatAttr(Storage);
}

double FloatAttr::getValue() const {
  return static_cast<const FloatAttrStorage *>(Impl)->Value;
}

Type FloatAttr::getType() const {
  return static_cast<const FloatAttrStorage *>(Impl)->Ty;
}

bool FloatAttr::classof(Attribute Attr) {
  return Attr.getTypeID() == TypeID::get<FloatAttrStorage>();
}

//===----------------------------------------------------------------------===//
// StringAttr
//===----------------------------------------------------------------------===//

/// Escapes \p Value for inclusion in a double-quoted string literal.
static std::string escapeString(std::string_view Value) {
  std::string Out;
  Out.reserve(Value.size() + 2);
  Out += '"';
  for (char C : Value) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  Out += '"';
  return Out;
}

StringAttr StringAttr::get(MLIRContext *Context, std::string_view Value) {
  std::string Key = escapeString(Value);
  auto *Storage = Context->getAttributeStorage(Key, [&] {
    return std::make_unique<StringAttrStorage>(Context, Key,
                                               std::string(Value));
  });
  return StringAttr(Storage);
}

const std::string &StringAttr::getValue() const {
  return static_cast<const StringAttrStorage *>(Impl)->Value;
}

bool StringAttr::classof(Attribute Attr) {
  return Attr.getTypeID() == TypeID::get<StringAttrStorage>();
}

//===----------------------------------------------------------------------===//
// TypeAttr
//===----------------------------------------------------------------------===//

TypeAttr TypeAttr::get(Type Ty) {
  MLIRContext *Context = Ty.getContext();
  const std::string &Key = Ty.str();
  auto *Storage = Context->getAttributeStorage(Key, [&] {
    return std::make_unique<TypeAttrStorage>(Context, Key, Ty);
  });
  return TypeAttr(Storage);
}

Type TypeAttr::getValue() const {
  return static_cast<const TypeAttrStorage *>(Impl)->Ty;
}

bool TypeAttr::classof(Attribute Attr) {
  return Attr.getTypeID() == TypeID::get<TypeAttrStorage>();
}

//===----------------------------------------------------------------------===//
// ArrayAttr
//===----------------------------------------------------------------------===//

ArrayAttr ArrayAttr::get(MLIRContext *Context,
                         std::vector<Attribute> Elements) {
  std::ostringstream Key;
  Key << "[";
  for (size_t I = 0; I < Elements.size(); ++I) {
    if (I)
      Key << ", ";
    Key << Elements[I].str();
  }
  Key << "]";
  std::string KeyStr = Key.str();
  auto *Storage = Context->getAttributeStorage(KeyStr, [&] {
    return std::make_unique<ArrayAttrStorage>(Context, KeyStr,
                                              std::move(Elements));
  });
  return ArrayAttr(Storage);
}

const std::vector<Attribute> &ArrayAttr::getValue() const {
  return static_cast<const ArrayAttrStorage *>(Impl)->Elements;
}

bool ArrayAttr::classof(Attribute Attr) {
  return Attr.getTypeID() == TypeID::get<ArrayAttrStorage>();
}

//===----------------------------------------------------------------------===//
// SymbolRefAttr
//===----------------------------------------------------------------------===//

SymbolRefAttr SymbolRefAttr::get(MLIRContext *Context,
                                 std::vector<std::string> Path) {
  assert(!Path.empty() && "symbol ref requires at least one component");
  std::string Key;
  for (size_t I = 0; I < Path.size(); ++I) {
    if (I)
      Key += "::";
    Key += "@" + Path[I];
  }
  auto *Storage = Context->getAttributeStorage(Key, [&] {
    return std::make_unique<SymbolRefAttrStorage>(Context, Key,
                                                  std::move(Path));
  });
  return SymbolRefAttr(Storage);
}

SymbolRefAttr SymbolRefAttr::get(MLIRContext *Context,
                                 std::string_view Root) {
  return get(Context, std::vector<std::string>{std::string(Root)});
}

const std::vector<std::string> &SymbolRefAttr::getPath() const {
  return static_cast<const SymbolRefAttrStorage *>(Impl)->Path;
}

bool SymbolRefAttr::classof(Attribute Attr) {
  return Attr.getTypeID() == TypeID::get<SymbolRefAttrStorage>();
}

//===----------------------------------------------------------------------===//
// UnitAttr
//===----------------------------------------------------------------------===//

UnitAttr UnitAttr::get(MLIRContext *Context) {
  std::string Key = "unit";
  auto *Storage = Context->getAttributeStorage(Key, [&] {
    return std::make_unique<UnitAttrStorage>(Context, Key);
  });
  return UnitAttr(Storage);
}

bool UnitAttr::classof(Attribute Attr) {
  return Attr.getTypeID() == TypeID::get<UnitAttrStorage>();
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

IntegerAttr smlir::getBoolAttr(MLIRContext *Context, bool Value) {
  return IntegerAttr::get(IntegerType::get(Context, 1), Value ? 1 : 0);
}

IntegerAttr smlir::getI64Attr(MLIRContext *Context, int64_t Value) {
  return IntegerAttr::get(IntegerType::get(Context, 64), Value);
}

IntegerAttr smlir::getIndexAttr(MLIRContext *Context, int64_t Value) {
  return IntegerAttr::get(IndexType::get(Context), Value);
}

ArrayAttr smlir::getIndexArrayAttr(MLIRContext *Context,
                                   const std::vector<int64_t> &Values) {
  std::vector<Attribute> Elements;
  Elements.reserve(Values.size());
  for (int64_t Value : Values)
    Elements.push_back(getIndexAttr(Context, Value));
  return ArrayAttr::get(Context, std::move(Elements));
}
