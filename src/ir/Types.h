//===- Types.h - IR type system ---------------------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR type system: the value-semantic `Type` handle, the uniqued
/// `TypeStorage` hierarchy and the builtin types (integer, float, index,
/// function, memref). Dialects (e.g. the SYCL dialect) define additional
/// types by deriving their own storages and registering a parse hook with
/// the context.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_TYPES_H
#define SMLIR_IR_TYPES_H

#include "support/TypeID.h"

#include <cassert>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace smlir {

class MLIRContext;

namespace detail {

/// Base class for uniqued type storage. Each storage caches its canonical
/// printed form, which doubles as the uniquing key.
struct TypeStorage {
  TypeStorage(TypeID ID, MLIRContext *Context, std::string Key)
      : ID(ID), Context(Context), Key(std::move(Key)) {}
  virtual ~TypeStorage() = default;

  TypeID ID;
  MLIRContext *Context;
  /// Canonical textual form, e.g. "memref<?xf32, 3>".
  std::string Key;
};

} // namespace detail

/// Value-semantic handle to a uniqued type. Copyable, cheap, and comparable
/// by pointer identity. A default-constructed Type is null.
class Type {
public:
  using Storage = detail::TypeStorage;

  Type() = default;
  explicit Type(Storage *Impl) : Impl(Impl) {}

  explicit operator bool() const { return Impl != nullptr; }
  bool operator==(Type Other) const { return Impl == Other.Impl; }
  bool operator!=(Type Other) const { return Impl != Other.Impl; }
  bool operator<(Type Other) const { return Impl < Other.Impl; }

  MLIRContext *getContext() const;
  TypeID getTypeID() const;

  template <typename U>
  bool isa() const {
    assert(Impl && "isa<> used on a null type");
    return U::classof(*this);
  }
  template <typename U>
  U dyn_cast() const {
    return Impl && isa<U>() ? U(Impl) : U();
  }
  template <typename U>
  U cast() const {
    assert(isa<U>() && "cast<U>() on incompatible type");
    return U(Impl);
  }

  /// Returns the canonical textual form of this type.
  const std::string &str() const;
  void print(std::ostream &OS) const;

  /// Convenience integer/float queries.
  bool isInteger(unsigned Width) const;
  bool isIndex() const;
  bool isF32() const;
  bool isF64() const;
  bool isIntOrIndex() const;
  bool isFloat() const;

  Storage *getImpl() const { return Impl; }

protected:
  Storage *Impl = nullptr;
};

inline std::ostream &operator<<(std::ostream &OS, Type Ty) {
  Ty.print(OS);
  return OS;
}

//===----------------------------------------------------------------------===//
// Builtin types
//===----------------------------------------------------------------------===//

/// Signless integer type of arbitrary bit width (i1, i8, i32, i64, ...).
class IntegerType : public Type {
public:
  using Type::Type;
  static IntegerType get(MLIRContext *Context, unsigned Width);
  unsigned getWidth() const;
  static bool classof(Type Ty);
};

/// IEEE float type (f32 or f64).
class FloatType : public Type {
public:
  using Type::Type;
  static FloatType get(MLIRContext *Context, unsigned Width);
  unsigned getWidth() const;
  static bool classof(Type Ty);
};

/// Target-width integer type used for indexing (modeled as 64-bit).
class IndexType : public Type {
public:
  using Type::Type;
  static IndexType get(MLIRContext *Context);
  static bool classof(Type Ty);
};

/// Function type: `(inputs) -> (results)`.
class FunctionType : public Type {
public:
  using Type::Type;
  static FunctionType get(MLIRContext *Context, std::vector<Type> Inputs,
                          std::vector<Type> Results);
  const std::vector<Type> &getInputs() const;
  const std::vector<Type> &getResults() const;
  unsigned getNumInputs() const { return getInputs().size(); }
  unsigned getNumResults() const { return getResults().size(); }
  Type getInput(unsigned Index) const { return getInputs()[Index]; }
  Type getResult(unsigned Index) const { return getResults()[Index]; }
  static bool classof(Type Ty);
};

/// Memory spaces used by memref types, mirroring the SYCL memory hierarchy
/// (paper §II-A): global device memory, work-group local memory and
/// work-item private memory.
enum class MemorySpace : uint32_t {
  Global = 0,
  Local = 3,
  Private = 5,
};

/// A shaped reference into memory: `memref<4x?xf32, space>`. The shape uses
/// kDynamic for unknown extents.
class MemRefType : public Type {
public:
  using Type::Type;
  static constexpr int64_t kDynamic = -1;

  static MemRefType get(MLIRContext *Context, std::vector<int64_t> Shape,
                        Type ElementType,
                        MemorySpace Space = MemorySpace::Global);
  const std::vector<int64_t> &getShape() const;
  Type getElementType() const;
  MemorySpace getMemorySpace() const;
  unsigned getRank() const { return getShape().size(); }
  bool hasStaticShape() const;
  /// Number of elements; valid only for static shapes.
  int64_t getNumElements() const;
  static bool classof(Type Ty);
};

} // namespace smlir

namespace std {
template <>
struct hash<smlir::Type> {
  size_t operator()(const smlir::Type &Ty) const {
    return hash<void *>()(static_cast<void *>(Ty.getImpl()));
  }
};
} // namespace std

#endif // SMLIR_IR_TYPES_H
