//===- DialectConversion.cpp - Dialect conversion framework ----------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/DialectConversion.h"

#include "ir/Block.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <set>

using namespace smlir;

//===----------------------------------------------------------------------===//
// TypeConverter
//===----------------------------------------------------------------------===//

TypeConverter::~TypeConverter() = default;

Type TypeConverter::convertType(Type Ty) const {
  // Newest-registered rule wins; std::nullopt falls through to older rules.
  for (auto It = Conversions.rbegin(); It != Conversions.rend(); ++It) {
    std::optional<Type> Result = (*It)(Ty);
    if (Result)
      return *Result;
  }
  return Type();
}

LogicalResult TypeConverter::convertTypes(const std::vector<Type> &Types,
                                          std::vector<Type> &Results) const {
  Results.clear();
  Results.reserve(Types.size());
  for (Type Ty : Types) {
    Type Converted = convertType(Ty);
    if (!Converted)
      return failure();
    Results.push_back(Converted);
  }
  return success();
}

bool TypeConverter::isSignatureLegal(FunctionType Ty) const {
  for (Type Input : Ty.getInputs())
    if (!isLegal(Input))
      return false;
  for (Type Result : Ty.getResults())
    if (!isLegal(Result))
      return false;
  return true;
}

/// The default materialization: a `builtin.unrealized_conversion_cast`
/// bridging the two type systems. Full conversions are expected to convert
/// every producer and consumer so no cast survives.
static Value createUnrealizedCast(OpBuilder &Builder, Location Loc,
                                  Type ResultType, Value Input) {
  OperationState State(Loc, "builtin.unrealized_conversion_cast");
  State.addOperand(Input);
  State.addType(ResultType);
  return Builder.createOperation(State)->getResult(0);
}

Value TypeConverter::materialize(
    const std::vector<MaterializationFn> &Callbacks, OpBuilder &Builder,
    Location Loc, Type ResultType, Value Input) const {
  if (Input.getType() == ResultType)
    return Input;
  for (auto It = Callbacks.rbegin(); It != Callbacks.rend(); ++It)
    if (Value Result = (*It)(Builder, ResultType, Input, Loc))
      return Result;
  return createUnrealizedCast(Builder, Loc, ResultType, Input);
}

Value TypeConverter::materializeSourceConversion(OpBuilder &Builder,
                                                 Location Loc,
                                                 Type ResultType,
                                                 Value Input) const {
  return materialize(SourceMaterializations, Builder, Loc, ResultType, Input);
}

Value TypeConverter::materializeTargetConversion(OpBuilder &Builder,
                                                 Location Loc,
                                                 Type ResultType,
                                                 Value Input) const {
  return materialize(TargetMaterializations, Builder, Loc, ResultType, Input);
}

//===----------------------------------------------------------------------===//
// ConversionTarget
//===----------------------------------------------------------------------===//

/// The dialect namespace of an operation name ("arith.addi" -> "arith").
static std::string_view dialectOf(std::string_view OpName) {
  size_t Dot = OpName.find('.');
  return Dot == std::string_view::npos ? OpName : OpName.substr(0, Dot);
}

std::optional<bool> ConversionTarget::isLegal(Operation *Op) const {
  auto Evaluate = [&](const Action &A) -> bool {
    switch (A.Kind) {
    case LegalizationAction::Legal:
      return true;
    case LegalizationAction::Illegal:
      return false;
    case LegalizationAction::Dynamic:
      return A.Fn(Op);
    }
    return true;
  };

  const std::string &Name = Op->getName().getStringRef();
  if (auto It = OpActions.find(Name); It != OpActions.end())
    return Evaluate(It->second);
  if (auto It = DialectActions.find(dialectOf(Name));
      It != DialectActions.end())
    return Evaluate(It->second);
  if (UnknownOpFn)
    return UnknownOpFn(Op);
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Conversion journal
//===----------------------------------------------------------------------===//

namespace smlir {
namespace detail {

/// The record of every IR mutation made during a conversion, in order.
/// Rolling back processes entries newest-first; committing replays the
/// deferred effects (use rewiring, argument erasure, op deletion).
class ConversionJournal {
public:
  struct Action {
    enum class Kind {
      /// \c Op was created (and possibly inserted).
      Create,
      /// \c Op was unlinked from \c B (was before \c Next); deleted on
      /// commit, reinserted on rollback.
      Erase,
      /// Value \c Key was mapped to a new value (previous mapping state
      /// recorded for rollback).
      Map,
      /// Operand \c Index of \c Op was changed from \c OldValue.
      SetOperand,
      /// Attribute \c AttrName of \c Op was set/removed (previous value
      /// recorded).
      SetAttr,
      /// A fresh argument (index \c Index) was appended to block \c B.
      AddArg,
      /// Argument \c Index of \c B is to be erased on commit.
      DeferEraseArg,
      /// The blocks of region \c From were moved into region \c To.
      MoveBody,
    };

    Kind K;
    Operation *Op = nullptr;
    Block *B = nullptr;
    Operation *Next = nullptr;
    ValueImpl *Key = nullptr;
    Value OldMapped;
    bool HadMapping = false;
    unsigned Index = 0;
    Value OldValue;
    std::string AttrName;
    Attribute OldAttr;
    bool HadAttr = false;
    Region *From = nullptr;
    Region *To = nullptr;
  };

  std::vector<Action> Actions;
  /// Conversion value mapping: original value -> replacement.
  std::map<ValueImpl *, Value> Mapping;
  /// Operations unlinked by eraseOp/replaceOp, pending deletion.
  std::set<Operation *> Erased;
};

} // namespace detail
} // namespace smlir

using Journal = smlir::detail::ConversionJournal;
using Action = Journal::Action;

//===----------------------------------------------------------------------===//
// ConversionPatternRewriter
//===----------------------------------------------------------------------===//

ConversionPatternRewriter::ConversionPatternRewriter(
    MLIRContext *Context, const TypeConverter *Converter)
    : PatternRewriter(Context), Converter(Converter),
      Journal(std::make_unique<smlir::detail::ConversionJournal>()) {}

ConversionPatternRewriter::~ConversionPatternRewriter() = default;

Operation *ConversionPatternRewriter::insert(Operation *Op) {
  PatternRewriter::insert(Op);
  Action A;
  A.K = Action::Kind::Create;
  A.Op = Op;
  Journal->Actions.push_back(std::move(A));
  return Op;
}

void ConversionPatternRewriter::eraseOp(Operation *Op) {
  Action A;
  A.K = Action::Kind::Erase;
  A.Op = Op;
  A.B = Op->getBlock();
  A.Next = Op->getNextNode();
  Journal->Actions.push_back(std::move(A));
  Op->remove();
  Journal->Erased.insert(Op);
}

/// Journals and installs the mapping \p From -> \p To.
static void mapValue(Journal &J, Value From, Value To) {
  Action A;
  A.K = Action::Kind::Map;
  A.Key = From.getImpl();
  auto It = J.Mapping.find(A.Key);
  if (It != J.Mapping.end()) {
    A.HadMapping = true;
    A.OldMapped = It->second;
  }
  J.Actions.push_back(std::move(A));
  J.Mapping[From.getImpl()] = To;
}

void ConversionPatternRewriter::replaceOp(
    Operation *Op, const std::vector<Value> &NewValues) {
  assert(NewValues.size() == Op->getNumResults() &&
         "replacement arity mismatch");
  for (unsigned I = 0, E = Op->getNumResults(); I != E; ++I)
    mapValue(*Journal, Op->getResult(I), NewValues[I]);
  eraseOp(Op);
}

void ConversionPatternRewriter::updateOperand(Operation *Op, unsigned Index,
                                              Value NewValue) {
  Action A;
  A.K = Action::Kind::SetOperand;
  A.Op = Op;
  A.Index = Index;
  A.OldValue = Op->getOperand(Index);
  Journal->Actions.push_back(std::move(A));
  Op->setOperand(Index, NewValue);
}

void ConversionPatternRewriter::updateAttribute(Operation *Op,
                                                std::string_view Name,
                                                Attribute Attr) {
  Action A;
  A.K = Action::Kind::SetAttr;
  A.Op = Op;
  A.AttrName = std::string(Name);
  A.OldAttr = Op->getAttr(Name);
  A.HadAttr = static_cast<bool>(A.OldAttr);
  Journal->Actions.push_back(std::move(A));
  Op->setAttr(Name, Attr);
}

void ConversionPatternRewriter::removeAttribute(Operation *Op,
                                                std::string_view Name) {
  if (!Op->hasAttr(Name))
    return;
  Action A;
  A.K = Action::Kind::SetAttr;
  A.Op = Op;
  A.AttrName = std::string(Name);
  A.OldAttr = Op->getAttr(Name);
  A.HadAttr = true;
  Journal->Actions.push_back(std::move(A));
  Op->removeAttr(Name);
}

void ConversionPatternRewriter::applySignatureConversion(
    Block *B, const std::vector<Type> &NewTypes) {
  assert(NewTypes.size() == B->getNumArguments() &&
         "signature conversion is 1:1 per argument");
  unsigned NumOld = B->getNumArguments();
  for (unsigned I = 0; I != NumOld; ++I) {
    Value OldArg = B->getArgument(I);
    Value NewArg = B->addArgument(NewTypes[I]);
    Action A;
    A.K = Action::Kind::AddArg;
    A.B = B;
    A.Index = B->getNumArguments() - 1;
    Journal->Actions.push_back(std::move(A));
    mapValue(*Journal, OldArg, NewArg);
    Action D;
    D.K = Action::Kind::DeferEraseArg;
    D.B = B;
    D.Index = I;
    Journal->Actions.push_back(std::move(D));
  }
}

void ConversionPatternRewriter::moveRegionBody(Region &From, Region &To) {
  To.takeBody(From);
  Action A;
  A.K = Action::Kind::MoveBody;
  A.From = &From;
  A.To = &To;
  Journal->Actions.push_back(std::move(A));
}

Value ConversionPatternRewriter::getRemapped(Value V) const {
  // Follow replacement chains (a replaced value may itself be replaced).
  for (unsigned Guard = 0; Guard < 1000; ++Guard) {
    auto It = Journal->Mapping.find(V.getImpl());
    if (It == Journal->Mapping.end())
      return V;
    V = It->second;
  }
  reportFatalError("conversion value mapping forms a cycle");
}

std::vector<Value>
ConversionPatternRewriter::getRemapped(const std::vector<Value> &Vals) const {
  std::vector<Value> Result;
  Result.reserve(Vals.size());
  for (Value V : Vals)
    Result.push_back(getRemapped(V));
  return Result;
}

size_t ConversionPatternRewriter::checkpoint() const {
  return Journal->Actions.size();
}

void ConversionPatternRewriter::rollbackTo(size_t Checkpoint) {
  auto &Actions = Journal->Actions;
  while (Actions.size() > Checkpoint) {
    Action A = std::move(Actions.back());
    Actions.pop_back();
    switch (A.K) {
    case Action::Kind::Create:
      // Uses of the op's results were journaled after its creation, so
      // they are already undone; the op can be destroyed outright.
      if (A.Op->getBlock())
        A.Op->erase();
      else
        delete A.Op;
      break;
    case Action::Kind::Erase:
      A.B->insertBefore(A.Next, A.Op);
      Journal->Erased.erase(A.Op);
      break;
    case Action::Kind::Map:
      if (A.HadMapping)
        Journal->Mapping[A.Key] = A.OldMapped;
      else
        Journal->Mapping.erase(A.Key);
      break;
    case Action::Kind::SetOperand:
      A.Op->setOperand(A.Index, A.OldValue);
      break;
    case Action::Kind::SetAttr:
      if (A.HadAttr)
        A.Op->setAttr(A.AttrName, A.OldAttr);
      else
        A.Op->removeAttr(A.AttrName);
      break;
    case Action::Kind::AddArg:
      A.B->eraseArgument(A.Index);
      break;
    case Action::Kind::DeferEraseArg:
      break; // No IR effect yet.
    case Action::Kind::MoveBody:
      A.From->takeBody(*A.To);
      break;
    }
  }
}

std::vector<Operation *>
ConversionPatternRewriter::getCreatedOps(size_t Checkpoint) const {
  std::vector<Operation *> Created;
  for (size_t I = Checkpoint, E = Journal->Actions.size(); I != E; ++I) {
    const Action &A = Journal->Actions[I];
    if (A.K == Action::Kind::Create && !Journal->Erased.count(A.Op))
      Created.push_back(A.Op);
  }
  return Created;
}

bool ConversionPatternRewriter::isErased(Operation *Op) const {
  // An op nested inside an erased op is dead too: walk the parent chain,
  // which still reaches the unlinked root through the region structure.
  for (Operation *Cur = Op; Cur; Cur = Cur->getParentOp())
    if (Journal->Erased.count(Cur))
      return true;
  return false;
}

unsigned ConversionPatternRewriter::countPendingMaterializations() const {
  unsigned Pending = 0;
  for (const Action &A : Journal->Actions) {
    if (A.K != Action::Kind::Map)
      continue;
    Value Old(A.Key);
    Value New = getRemapped(Old);
    if (New == Old || New.getType() == Old.getType())
      continue;
    for (OpOperand *Use : Old.getUses())
      if (!isErased(Use->getOwner()))
        ++Pending;
  }
  return Pending;
}

void ConversionPatternRewriter::finalize() {
  // 1. Rewire remaining uses of every replaced value to its final
  //    conversion, bridging type changes with source materializations.
  OpBuilder CastBuilder(getContext());
  size_t NumActions = Journal->Actions.size();
  for (size_t I = 0; I != NumActions; ++I) {
    const Action &A = Journal->Actions[I];
    if (A.K != Action::Kind::Map)
      continue;
    Value Old(A.Key);
    Value New = getRemapped(Old);
    if (New == Old)
      continue;
    std::vector<OpOperand *> Uses = Old.getUses();
    for (OpOperand *Use : Uses) {
      Operation *Owner = Use->getOwner();
      if (isErased(Owner))
        continue; // Dropped with its owner.
      if (New.getType() == Old.getType()) {
        Use->set(New);
        continue;
      }
      CastBuilder.setInsertionPoint(Owner);
      Value Cast =
          Converter
              ? Converter->materializeSourceConversion(
                    CastBuilder, Owner->getLoc(), Old.getType(), New)
              : createUnrealizedCast(CastBuilder, Owner->getLoc(),
                                     Old.getType(), New);
      Use->set(Cast);
    }
  }

  // 2. Drop every reference held by erased operations: they may still
  //    point at block arguments about to be erased (and at each other),
  //    so this must precede argument erasure and deletion.
  for (Operation *Op : Journal->Erased)
    Op->dropAllReferences();

  // 3. Erase converted-away block arguments, highest index first so
  //    recorded indices stay valid.
  std::map<Block *, std::vector<unsigned>> ArgErasures;
  for (const Action &A : Journal->Actions)
    if (A.K == Action::Kind::DeferEraseArg)
      ArgErasures[A.B].push_back(A.Index);
  for (auto &[B, Indices] : ArgErasures) {
    if (Operation *Parent = B->getParentOp(); Parent && isErased(Parent))
      continue;
    std::sort(Indices.begin(), Indices.end(), std::greater<unsigned>());
    for (unsigned Index : Indices)
      B->eraseArgument(Index);
  }

  // 4. Delete every erased operation (cross-references are already
  //    dropped, so deletion order does not matter).
  for (Operation *Op : Journal->Erased) {
    for (Value Result : Op->getResults())
      if (!Result.use_empty())
        reportFatalError(
            "dialect conversion erased '" + Op->getName().getStringRef() +
            "' but a result still has uses (pattern forgot replaceOp?)");
    delete Op;
  }

  Journal->Actions.clear();
  Journal->Mapping.clear();
  Journal->Erased.clear();
}

//===----------------------------------------------------------------------===//
// Conversion drivers
//===----------------------------------------------------------------------===//

/// Collects \p Root and all nested ops in pre-order (parents before nested
/// operations, definitions before uses within a block), the order in which
/// legalization proceeds.
static void collectPreOrder(Operation *Root,
                            std::vector<Operation *> &Worklist) {
  Worklist.push_back(Root);
  for (auto &R : Root->getRegions())
    for (auto &B : *R)
      for (Operation *Op : *B)
        collectPreOrder(Op, Worklist);
}

static LogicalResult applyConversion(Operation *Root,
                                     const ConversionTarget &Target,
                                     const RewritePatternSet &Patterns,
                                     const TypeConverter *Converter,
                                     bool Full, std::string *ErrorMessage) {
  ConversionPatternRewriter Rewriter(Root->getContext(), Converter);

  // Highest-benefit patterns are attempted first (stable within ties).
  std::vector<const RewritePattern *> Ordered =
      Patterns.getBenefitOrdered();

  std::vector<Operation *> Worklist;
  collectPreOrder(Root, Worklist);

  auto Fail = [&](std::string Message) {
    // Roll everything back: a failed conversion leaves the IR untouched.
    Rewriter.rollbackTo(0);
    if (ErrorMessage)
      *ErrorMessage = std::move(Message);
    return failure();
  };

  for (size_t I = 0; I != Worklist.size(); ++I) {
    Operation *Op = Worklist[I];
    if (Rewriter.isErased(Op))
      continue;
    // Legal ops are skipped; unknown ops may remain under partial
    // conversion but must be legalized under full conversion.
    if (Target.isLegal(Op).value_or(!Full))
      continue;

    bool Converted = false;
    for (const RewritePattern *P : Ordered) {
      if (!P->getRootName().empty() &&
          P->getRootName() != Op->getName().getStringRef())
        continue;
      size_t Checkpoint = Rewriter.checkpoint();
      Rewriter.setInsertionPoint(Op);
      LogicalResult Result = failure();
      if (const auto *CP = dynamic_cast<const ConversionPattern *>(P)) {
        std::vector<Value> Remapped =
            Rewriter.getRemapped(Op->getOperands());
        Result = CP->matchAndRewrite(Op, Remapped, Rewriter);
      } else {
        Result = P->matchAndRewrite(Op, Rewriter);
      }
      if (Result.succeeded()) {
        // Newly created operations must be legalized as well.
        for (Operation *NewOp : Rewriter.getCreatedOps(Checkpoint))
          Worklist.push_back(NewOp);
        Converted = true;
        break;
      }
      Rewriter.rollbackTo(Checkpoint);
    }
    if (!Converted)
      return Fail("failed to legalize operation '" +
                  Op->getName().getStringRef() + "'");
  }

  if (Full) {
    // Safety net: every operation that remains must be explicitly legal.
    std::string IllegalName;
    Root->walk([&](Operation *Op) {
      if (IllegalName.empty() && !Target.isLegal(Op).value_or(false))
        IllegalName = Op->getName().getStringRef();
    });
    if (!IllegalName.empty())
      return Fail("full conversion left illegal operation '" + IllegalName +
                  "'");
    // Committing would insert source materializations (casts that are
    // never themselves legalized); under full conversion that means a
    // producer/consumer was never converted.
    if (unsigned Pending = Rewriter.countPendingMaterializations())
      return Fail("full conversion would leave " + std::to_string(Pending) +
                  " unconverted use(s) of converted values (source "
                  "materializations required)");
  }

  Rewriter.finalize();
  return success();
}

LogicalResult smlir::applyPartialConversion(Operation *Root,
                                            const ConversionTarget &Target,
                                            const RewritePatternSet &Patterns,
                                            const TypeConverter *Converter,
                                            std::string *ErrorMessage) {
  return applyConversion(Root, Target, Patterns, Converter, /*Full=*/false,
                         ErrorMessage);
}

LogicalResult smlir::applyFullConversion(Operation *Root,
                                         const ConversionTarget &Target,
                                         const RewritePatternSet &Patterns,
                                         const TypeConverter *Converter,
                                         std::string *ErrorMessage) {
  return applyConversion(Root, Target, Patterns, Converter, /*Full=*/true,
                         ErrorMessage);
}
