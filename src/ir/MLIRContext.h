//===- MLIRContext.h - Global IR context ------------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MLIRContext owns all uniqued IR objects (types, attributes, interned
/// strings) and the registries for dialects and operations. Every IR entity
/// is created through and owned by a context.
///
/// Thread-safety: the uniquing tables are internally locked, so types and
/// attributes may be created from several threads (the task-graph
/// scheduler's workers compile and interpret concurrently). Storage
/// factory callbacks run under the lock and must not re-enter the
/// uniquer — construct component types/attributes before calling get.
/// Dialect/operation registration is not locked: registerAllDialects must
/// complete before the context is used concurrently (the registries are
/// read-only afterwards). Operations and modules are not shared state —
/// a module may only be mutated by one thread at a time.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_MLIRCONTEXT_H
#define SMLIR_IR_MLIRCONTEXT_H

#include "ir/Attributes.h"
#include "ir/Types.h"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace smlir {

class AbstractOperation;
class Dialect;

/// Callback used by the parser to parse a dialect type. It receives the
/// full type text after the `!` sigil (e.g. "sycl.id<2>") and returns the
/// parsed type or null on error.
using DialectTypeParseFn =
    std::function<Type(MLIRContext *, std::string_view)>;

/// Owns uniqued IR storage and the dialect/operation registries.
class MLIRContext {
public:
  MLIRContext();
  ~MLIRContext();

  MLIRContext(const MLIRContext &) = delete;
  MLIRContext &operator=(const MLIRContext &) = delete;

  //===--------------------------------------------------------------------===//
  // Uniquing
  //===--------------------------------------------------------------------===//

  /// Returns the uniqued type storage for \p Key, creating it with \p MakeFn
  /// on first use. \p MakeFn must produce a storage whose Key matches.
  detail::TypeStorage *
  getTypeStorage(const std::string &Key,
                 const std::function<std::unique_ptr<detail::TypeStorage>()>
                     &MakeFn);

  /// Returns the uniqued attribute storage for \p Key, creating it with
  /// \p MakeFn on first use.
  detail::AttributeStorage *getAttributeStorage(
      const std::string &Key,
      const std::function<std::unique_ptr<detail::AttributeStorage>()>
          &MakeFn);

  /// Interns \p Str and returns a stable pointer to it (used by Location).
  const std::string *internString(std::string_view Str);

  /// Registers \p Fn to run at the very start of this context's
  /// destruction, before any IR storage is torn down — observers may
  /// still destroy modules owned by the context. The process-wide
  /// compile service uses this to drop cached modules materialized in a
  /// dying context so they can never be handed out dangling.
  /// Registration is thread-safe; observers run on the destroying thread
  /// in registration order, outside the registration lock.
  void addDestructionObserver(std::function<void(MLIRContext *)> Fn);

  //===--------------------------------------------------------------------===//
  // Dialect and operation registries
  //===--------------------------------------------------------------------===//

  /// Registers dialect \p D (takes ownership). Asserts on duplicates.
  Dialect *registerDialect(std::unique_ptr<Dialect> D);

  /// Returns the registered dialect named \p Name, or null.
  Dialect *getDialect(std::string_view Name) const;

  /// Registers the op description \p Op (takes ownership).
  void registerOperation(std::unique_ptr<AbstractOperation> Op);

  /// Returns the registered description for op \p Name, or null.
  const AbstractOperation *getRegisteredOperation(std::string_view Name) const;

  /// Registers a parse hook for types of dialect \p DialectName.
  void registerTypeParser(std::string_view DialectName,
                          DialectTypeParseFn ParseFn);

  /// Returns the type parse hook for \p DialectName, or null.
  const DialectTypeParseFn *getTypeParser(std::string_view DialectName) const;

private:
  struct Impl;
  std::unique_ptr<Impl> TheImpl;
};

/// A dialect groups the operations, types and attributes of one domain
/// (paper §II-B). Concrete dialects register their operations in their
/// constructor.
class Dialect {
public:
  Dialect(std::string Name, MLIRContext *Context)
      : Name(std::move(Name)), Context(Context) {}
  virtual ~Dialect();

  const std::string &getNamespace() const { return Name; }
  MLIRContext *getContext() const { return Context; }

private:
  std::string Name;
  MLIRContext *Context;
};

/// Registers all dialects of this project (builtin, func, arith, math,
/// memref, scf, affine, sycl, llvm) into \p Context. Idempotent per context
/// only if called once; typically called right after context creation.
void registerAllDialects(MLIRContext &Context);

} // namespace smlir

#endif // SMLIR_IR_MLIRCONTEXT_H
