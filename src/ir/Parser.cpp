//===- Parser.cpp - Textual IR parsing --------------------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Block.h"
#include "ir/Builders.h"
#include "ir/MLIRContext.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>
#include <vector>

using namespace smlir;

//===----------------------------------------------------------------------===//
// Type text parsing
//===----------------------------------------------------------------------===//

static void skipSpacesAndComments(std::string_view Src, size_t &Pos) {
  while (Pos < Src.size()) {
    if (std::isspace(static_cast<unsigned char>(Src[Pos]))) {
      ++Pos;
      continue;
    }
    if (Src[Pos] == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
      while (Pos < Src.size() && Src[Pos] != '\n')
        ++Pos;
      continue;
    }
    break;
  }
}

static bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
         C == '.' || C == '$';
}

/// Reads an identifier (letters, digits, '_', '.', '$') at \p Pos.
static std::string_view readIdent(std::string_view Src, size_t &Pos) {
  size_t Start = Pos;
  while (Pos < Src.size() && isIdentChar(Src[Pos]))
    ++Pos;
  return Src.substr(Start, Pos - Start);
}

static void setError(std::string *ErrorMessage, std::string_view Msg) {
  if (ErrorMessage && ErrorMessage->empty())
    *ErrorMessage = std::string(Msg);
}

Type smlir::parseTypeFromSource(MLIRContext *Context, std::string_view Src,
                                size_t &Pos, std::string *ErrorMessage) {
  skipSpacesAndComments(Src, Pos);
  if (Pos >= Src.size()) {
    setError(ErrorMessage, "expected type, found end of input");
    return Type();
  }

  // Dialect type: !dialect.mnemonic<...>.
  if (Src[Pos] == '!') {
    ++Pos;
    size_t Start = Pos;
    std::string_view Ident = readIdent(Src, Pos);
    if (Ident.empty()) {
      setError(ErrorMessage, "expected dialect type name after '!'");
      return Type();
    }
    if (Pos < Src.size() && Src[Pos] == '<') {
      unsigned Depth = 0;
      do {
        if (Src[Pos] == '<')
          ++Depth;
        else if (Src[Pos] == '>')
          --Depth;
        ++Pos;
        if (Pos > Src.size()) {
          setError(ErrorMessage, "unbalanced '<' in dialect type");
          return Type();
        }
      } while (Depth > 0 && Pos < Src.size());
      if (Depth > 0) {
        setError(ErrorMessage, "unbalanced '<' in dialect type");
        return Type();
      }
    }
    std::string_view Full = Src.substr(Start, Pos - Start);
    size_t Dot = Full.find('.');
    std::string_view DialectName =
        Dot == std::string_view::npos ? Full.substr(0, Full.find('<'))
                                      : Full.substr(0, Dot);
    const DialectTypeParseFn *Hook = Context->getTypeParser(DialectName);
    if (!Hook) {
      setError(ErrorMessage,
               "no registered parser for dialect type '!" +
                   std::string(Full) + "'");
      return Type();
    }
    Type Result = (*Hook)(Context, Full);
    if (!Result)
      setError(ErrorMessage,
               "failed to parse dialect type '!" + std::string(Full) + "'");
    return Result;
  }

  // Function type: (inputs) -> (results).
  if (Src[Pos] == '(') {
    ++Pos;
    std::vector<Type> Inputs;
    skipSpacesAndComments(Src, Pos);
    while (Pos < Src.size() && Src[Pos] != ')') {
      Type Input = parseTypeFromSource(Context, Src, Pos, ErrorMessage);
      if (!Input)
        return Type();
      Inputs.push_back(Input);
      skipSpacesAndComments(Src, Pos);
      if (Pos < Src.size() && Src[Pos] == ',') {
        ++Pos;
        skipSpacesAndComments(Src, Pos);
      }
    }
    if (Pos >= Src.size()) {
      setError(ErrorMessage, "unbalanced '(' in function type");
      return Type();
    }
    ++Pos; // ')'
    skipSpacesAndComments(Src, Pos);
    if (Pos + 1 >= Src.size() || Src[Pos] != '-' || Src[Pos + 1] != '>') {
      setError(ErrorMessage, "expected '->' in function type");
      return Type();
    }
    Pos += 2;
    skipSpacesAndComments(Src, Pos);
    std::vector<Type> Results;
    if (Pos < Src.size() && Src[Pos] == '(') {
      ++Pos;
      skipSpacesAndComments(Src, Pos);
      while (Pos < Src.size() && Src[Pos] != ')') {
        Type Result = parseTypeFromSource(Context, Src, Pos, ErrorMessage);
        if (!Result)
          return Type();
        Results.push_back(Result);
        skipSpacesAndComments(Src, Pos);
        if (Pos < Src.size() && Src[Pos] == ',') {
          ++Pos;
          skipSpacesAndComments(Src, Pos);
        }
      }
      if (Pos >= Src.size()) {
        setError(ErrorMessage, "unbalanced '(' in function type results");
        return Type();
      }
      ++Pos; // ')'
    } else {
      Type Result = parseTypeFromSource(Context, Src, Pos, ErrorMessage);
      if (!Result)
        return Type();
      Results.push_back(Result);
    }
    return FunctionType::get(Context, std::move(Inputs), std::move(Results));
  }

  // memref<shape x elem (, space)?>.
  if (Src.substr(Pos).starts_with("memref<")) {
    Pos += 7;
    std::vector<int64_t> Shape;
    while (true) {
      skipSpacesAndComments(Src, Pos);
      if (Pos < Src.size() && Src[Pos] == '?') {
        if (Pos + 1 < Src.size() && Src[Pos + 1] == 'x') {
          Shape.push_back(MemRefType::kDynamic);
          Pos += 2;
          continue;
        }
        setError(ErrorMessage, "expected 'x' after '?' in memref shape");
        return Type();
      }
      if (Pos < Src.size() &&
          std::isdigit(static_cast<unsigned char>(Src[Pos]))) {
        size_t DigitEnd = Pos;
        while (DigitEnd < Src.size() &&
               std::isdigit(static_cast<unsigned char>(Src[DigitEnd])))
          ++DigitEnd;
        // A digit run followed by 'x' is a shape dimension; otherwise it is
        // the start of something malformed (element types never start with
        // a digit).
        if (DigitEnd < Src.size() && Src[DigitEnd] == 'x') {
          Shape.push_back(
              std::strtoll(Src.substr(Pos, DigitEnd - Pos).data(), nullptr,
                           10));
          Pos = DigitEnd + 1;
          continue;
        }
      }
      break;
    }
    Type Element = parseTypeFromSource(Context, Src, Pos, ErrorMessage);
    if (!Element)
      return Type();
    skipSpacesAndComments(Src, Pos);
    MemorySpace Space = MemorySpace::Global;
    if (Pos < Src.size() && Src[Pos] == ',') {
      ++Pos;
      skipSpacesAndComments(Src, Pos);
      size_t End = Pos;
      while (End < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[End])))
        ++End;
      if (End == Pos) {
        setError(ErrorMessage, "expected memory space integer in memref");
        return Type();
      }
      Space = static_cast<MemorySpace>(
          std::strtol(Src.substr(Pos, End - Pos).data(), nullptr, 10));
      Pos = End;
      skipSpacesAndComments(Src, Pos);
    }
    if (Pos >= Src.size() || Src[Pos] != '>') {
      setError(ErrorMessage, "expected '>' to close memref type");
      return Type();
    }
    ++Pos;
    return MemRefType::get(Context, std::move(Shape), Element, Space);
  }

  // Builtin scalar types.
  size_t IdentStart = Pos;
  std::string_view Ident = readIdent(Src, Pos);
  if (Ident == "index")
    return IndexType::get(Context);
  if (Ident == "f32")
    return FloatType::get(Context, 32);
  if (Ident == "f64")
    return FloatType::get(Context, 64);
  if (Ident.size() > 1 && Ident[0] == 'i') {
    bool AllDigits = true;
    for (char C : Ident.substr(1))
      AllDigits &= static_cast<bool>(
          std::isdigit(static_cast<unsigned char>(C)));
    if (AllDigits)
      return IntegerType::get(
          Context, std::strtol(Ident.substr(1).data(), nullptr, 10));
  }
  Pos = IdentStart;
  setError(ErrorMessage, "unknown type '" + std::string(Ident) + "'");
  return Type();
}

Type smlir::parseTypeString(MLIRContext *Context, std::string_view Text,
                            std::string *ErrorMessage) {
  size_t Pos = 0;
  Type Result = parseTypeFromSource(Context, Text, Pos, ErrorMessage);
  if (!Result)
    return Type();
  skipSpacesAndComments(Text, Pos);
  if (Pos != Text.size()) {
    setError(ErrorMessage, "trailing characters after type");
    return Type();
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

namespace {

enum class TokKind {
  EndOfFile,
  Error,
  Ident,        // bare identifier (may contain '.')
  Integer,      // [-]digits
  Float,        // [-]digits.digits[e[-]digits]
  String,       // "..."
  PercentId,    // %name
  AtId,         // @name
  CaretId,      // ^name
  Arrow,        // ->
  DoubleColon,  // ::
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Less,
  Greater,
  Equal,
  Colon,
  Comma,
  Bang,
};

struct Token {
  TokKind Kind = TokKind::EndOfFile;
  std::string Spelling;
  size_t Start = 0; // offset of first character in the source
};

class Lexer {
public:
  Lexer(std::string_view Src, size_t Pos = 0) : Src(Src), Pos(Pos) {}

  size_t getPos() const { return Pos; }
  void setPos(size_t NewPos) { Pos = NewPos; }

  Token next() {
    skipSpacesAndComments(Src, Pos);
    Token Tok;
    Tok.Start = Pos;
    if (Pos >= Src.size()) {
      Tok.Kind = TokKind::EndOfFile;
      return Tok;
    }
    char C = Src[Pos];
    switch (C) {
    case '(':
      return punct(Tok, TokKind::LParen);
    case ')':
      return punct(Tok, TokKind::RParen);
    case '{':
      return punct(Tok, TokKind::LBrace);
    case '}':
      return punct(Tok, TokKind::RBrace);
    case '[':
      return punct(Tok, TokKind::LBracket);
    case ']':
      return punct(Tok, TokKind::RBracket);
    case '<':
      return punct(Tok, TokKind::Less);
    case '>':
      return punct(Tok, TokKind::Greater);
    case '=':
      return punct(Tok, TokKind::Equal);
    case ',':
      return punct(Tok, TokKind::Comma);
    case '!':
      return punct(Tok, TokKind::Bang);
    case ':':
      if (Pos + 1 < Src.size() && Src[Pos + 1] == ':') {
        Tok.Kind = TokKind::DoubleColon;
        Tok.Spelling = "::";
        Pos += 2;
        return Tok;
      }
      return punct(Tok, TokKind::Colon);
    case '-':
      if (Pos + 1 < Src.size() && Src[Pos + 1] == '>') {
        Tok.Kind = TokKind::Arrow;
        Tok.Spelling = "->";
        Pos += 2;
        return Tok;
      }
      if (Pos + 1 < Src.size() &&
          std::isdigit(static_cast<unsigned char>(Src[Pos + 1])))
        return lexNumber(Tok);
      Tok.Kind = TokKind::Error;
      return Tok;
    case '"':
      return lexString(Tok);
    case '%':
    case '@':
    case '^': {
      ++Pos;
      std::string_view Name = readIdent(Src, Pos);
      Tok.Kind = C == '%' ? TokKind::PercentId
                          : (C == '@' ? TokKind::AtId : TokKind::CaretId);
      Tok.Spelling = std::string(Name);
      return Tok;
    }
    default:
      break;
    }
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber(Tok);
    if (isIdentChar(C)) {
      Tok.Kind = TokKind::Ident;
      Tok.Spelling = std::string(readIdent(Src, Pos));
      return Tok;
    }
    Tok.Kind = TokKind::Error;
    return Tok;
  }

private:
  Token punct(Token Tok, TokKind Kind) {
    Tok.Kind = Kind;
    Tok.Spelling = std::string(1, Src[Pos]);
    ++Pos;
    return Tok;
  }

  Token lexNumber(Token Tok) {
    size_t Start = Pos;
    if (Src[Pos] == '-')
      ++Pos;
    while (Pos < Src.size() &&
           std::isdigit(static_cast<unsigned char>(Src[Pos])))
      ++Pos;
    bool IsFloat = false;
    if (Pos < Src.size() && Src[Pos] == '.') {
      IsFloat = true;
      ++Pos;
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos])))
        ++Pos;
    }
    if (Pos < Src.size() && (Src[Pos] == 'e' || Src[Pos] == 'E')) {
      size_t Save = Pos;
      ++Pos;
      if (Pos < Src.size() && (Src[Pos] == '-' || Src[Pos] == '+'))
        ++Pos;
      if (Pos < Src.size() &&
          std::isdigit(static_cast<unsigned char>(Src[Pos]))) {
        IsFloat = true;
        while (Pos < Src.size() &&
               std::isdigit(static_cast<unsigned char>(Src[Pos])))
          ++Pos;
      } else {
        Pos = Save;
      }
    }
    Tok.Kind = IsFloat ? TokKind::Float : TokKind::Integer;
    Tok.Spelling = std::string(Src.substr(Start, Pos - Start));
    return Tok;
  }

  Token lexString(Token Tok) {
    ++Pos; // opening quote
    std::string Value;
    while (Pos < Src.size() && Src[Pos] != '"') {
      if (Src[Pos] == '\\' && Pos + 1 < Src.size()) {
        ++Pos;
        switch (Src[Pos]) {
        case 'n':
          Value += '\n';
          break;
        case 't':
          Value += '\t';
          break;
        default:
          Value += Src[Pos];
        }
        ++Pos;
        continue;
      }
      Value += Src[Pos++];
    }
    if (Pos >= Src.size()) {
      Tok.Kind = TokKind::Error;
      return Tok;
    }
    ++Pos; // closing quote
    Tok.Kind = TokKind::String;
    Tok.Spelling = std::move(Value);
    return Tok;
  }

  std::string_view Src;
  size_t Pos;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  Parser(MLIRContext *Context, std::string_view Src)
      : Context(Context), Src(Src), Lex(Src), Builder(Context) {
    advance();
  }

  /// Parses one top-level operation into a detached block, returning it.
  Operation *parseTopLevel() {
    pushScope(/*Isolated=*/true);
    Block Staging;
    if (!parseOperation(&Staging))
      return nullptr;
    if (Cur.Kind != TokKind::EndOfFile) {
      emitError("expected a single top-level operation");
      return nullptr;
    }
    Operation *Top = Staging.front();
    Staging.remove(Top);
    return Top;
  }

  const std::string &getError() const { return ErrMsg; }

private:
  //===------------------------------------------------------------------===//
  // Token helpers
  //===------------------------------------------------------------------===//

  void advance() { Cur = Lex.next(); }

  bool consumeIf(TokKind Kind) {
    if (Cur.Kind != Kind)
      return false;
    advance();
    return true;
  }

  bool expect(TokKind Kind, std::string_view What) {
    if (consumeIf(Kind))
      return true;
    emitError("expected " + std::string(What) + ", found '" + Cur.Spelling +
              "'");
    return false;
  }

  void emitError(std::string_view Msg) {
    if (!ErrMsg.empty())
      return;
    unsigned Line = 1, Col = 1;
    for (size_t I = 0; I < Cur.Start && I < Src.size(); ++I) {
      if (Src[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
    ErrMsg = "line " + std::to_string(Line) + ":" + std::to_string(Col) +
             ": " + std::string(Msg);
  }

  //===------------------------------------------------------------------===//
  // Scopes
  //===------------------------------------------------------------------===//

  struct Scope {
    bool Isolated;
    std::unordered_map<std::string, Value> Values;
  };

  void pushScope(bool Isolated) { Scopes.push_back(Scope{Isolated, {}}); }
  void popScope() { Scopes.pop_back(); }

  void defineValue(const std::string &Name, Value Val) {
    Scopes.back().Values[Name] = Val;
  }

  Value lookupValue(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->Values.find(Name);
      if (Found != It->Values.end())
        return Found->second;
      if (It->Isolated)
        break;
    }
    return Value();
  }

  //===------------------------------------------------------------------===//
  // Types embedded in the token stream
  //===------------------------------------------------------------------===//

  /// Parses a type starting at the current token by switching to text mode,
  /// then re-syncs the lexer.
  Type parseType() {
    size_t Pos = Cur.Start;
    std::string TypeErr;
    Type Result = parseTypeFromSource(Context, Src, Pos, &TypeErr);
    if (!Result) {
      emitError(TypeErr.empty() ? "failed to parse type" : TypeErr);
      return Type();
    }
    Lex.setPos(Pos);
    advance();
    return Result;
  }

  //===------------------------------------------------------------------===//
  // Attributes
  //===------------------------------------------------------------------===//

  Attribute parseAttributeValue() {
    switch (Cur.Kind) {
    case TokKind::Integer: {
      int64_t Value = std::strtoll(Cur.Spelling.c_str(), nullptr, 10);
      advance();
      Type Ty = IntegerType::get(Context, 64);
      if (consumeIf(TokKind::Colon)) {
        Ty = parseType();
        if (!Ty)
          return Attribute();
      }
      return IntegerAttr::get(Ty, Value);
    }
    case TokKind::Float: {
      double Value = std::strtod(Cur.Spelling.c_str(), nullptr);
      advance();
      Type Ty = FloatType::get(Context, 64);
      if (consumeIf(TokKind::Colon)) {
        Ty = parseType();
        if (!Ty)
          return Attribute();
      }
      return FloatAttr::get(Ty, Value);
    }
    case TokKind::String: {
      std::string Value = Cur.Spelling;
      advance();
      return StringAttr::get(Context, Value);
    }
    case TokKind::LBracket: {
      advance();
      std::vector<Attribute> Elements;
      while (Cur.Kind != TokKind::RBracket) {
        Attribute Element = parseAttributeValue();
        if (!Element)
          return Attribute();
        Elements.push_back(Element);
        if (!consumeIf(TokKind::Comma))
          break;
      }
      if (!expect(TokKind::RBracket, "']'"))
        return Attribute();
      return ArrayAttr::get(Context, std::move(Elements));
    }
    case TokKind::AtId: {
      std::vector<std::string> Path;
      Path.push_back(Cur.Spelling);
      advance();
      while (consumeIf(TokKind::DoubleColon)) {
        if (Cur.Kind != TokKind::AtId) {
          emitError("expected '@symbol' after '::'");
          return Attribute();
        }
        Path.push_back(Cur.Spelling);
        advance();
      }
      return SymbolRefAttr::get(Context, std::move(Path));
    }
    case TokKind::Bang: {
      // Dialect type attribute: rewind to the '!' and parse as type.
      Type Ty = parseTypeAtToken();
      return Ty ? TypeAttr::get(Ty) : Attribute();
    }
    case TokKind::LParen: {
      Type Ty = parseTypeAtToken();
      return Ty ? TypeAttr::get(Ty) : Attribute();
    }
    case TokKind::Ident: {
      if (Cur.Spelling == "true" || Cur.Spelling == "false") {
        bool Value = Cur.Spelling == "true";
        advance();
        return getBoolAttr(Context, Value);
      }
      if (Cur.Spelling == "unit") {
        advance();
        return UnitAttr::get(Context);
      }
      if (isTypeKeyword(Cur.Spelling)) {
        Type Ty = parseTypeAtToken();
        return Ty ? TypeAttr::get(Ty) : Attribute();
      }
      emitError("unexpected identifier '" + Cur.Spelling +
                "' in attribute value");
      return Attribute();
    }
    default:
      emitError("expected attribute value");
      return Attribute();
    }
  }

  static bool isTypeKeyword(const std::string &Spelling) {
    if (Spelling == "index" || Spelling == "f32" || Spelling == "f64")
      return true;
    if (Spelling.rfind("memref", 0) == 0)
      return true;
    if (Spelling.size() > 1 && Spelling[0] == 'i') {
      for (char C : Spelling.substr(1))
        if (!std::isdigit(static_cast<unsigned char>(C)))
          return false;
      return true;
    }
    return false;
  }

  /// Parses a type whose text begins at the current token.
  Type parseTypeAtToken() {
    size_t Pos = Cur.Start;
    std::string TypeErr;
    Type Ty = parseTypeFromSource(Context, Src, Pos, &TypeErr);
    if (!Ty) {
      emitError(TypeErr);
      return Type();
    }
    Lex.setPos(Pos);
    advance();
    return Ty;
  }

  /// Parses `{name (= value)?, ...}` into \p Attrs. The opening brace has
  /// not been consumed yet.
  bool parseAttrDict(std::vector<std::pair<std::string, Attribute>> &Attrs) {
    if (!expect(TokKind::LBrace, "'{'"))
      return false;
    while (Cur.Kind != TokKind::RBrace) {
      if (Cur.Kind != TokKind::Ident && Cur.Kind != TokKind::String) {
        emitError("expected attribute name");
        return false;
      }
      std::string Name = Cur.Spelling;
      advance();
      Attribute Value;
      if (consumeIf(TokKind::Equal)) {
        Value = parseAttributeValue();
        if (!Value)
          return false;
      } else {
        Value = UnitAttr::get(Context);
      }
      Attrs.emplace_back(std::move(Name), Value);
      if (!consumeIf(TokKind::Comma))
        break;
    }
    return expect(TokKind::RBrace, "'}'");
  }

  //===------------------------------------------------------------------===//
  // Operations
  //===------------------------------------------------------------------===//

  /// Parses one operation and appends it to \p InsertInto. Returns the op
  /// or null on error.
  Operation *parseOperation(Block *InsertInto) {
    std::vector<std::string> ResultNames;
    if (Cur.Kind == TokKind::PercentId) {
      ResultNames.push_back(Cur.Spelling);
      advance();
      while (consumeIf(TokKind::Comma)) {
        if (Cur.Kind != TokKind::PercentId) {
          emitError("expected result name after ','");
          return nullptr;
        }
        ResultNames.push_back(Cur.Spelling);
        advance();
      }
      if (!expect(TokKind::Equal, "'=' after result names"))
        return nullptr;
    }

    Operation *Op = nullptr;
    if (Cur.Kind == TokKind::String)
      Op = parseGenericOperation(InsertInto);
    else if (Cur.Kind == TokKind::Ident && Cur.Spelling == "module")
      Op = parseModuleOperation(InsertInto);
    else if (Cur.Kind == TokKind::Ident && Cur.Spelling == "func.func")
      Op = parseFuncOperation(InsertInto);
    else {
      emitError("expected operation");
      return nullptr;
    }
    if (!Op)
      return nullptr;

    if (ResultNames.size() != Op->getNumResults()) {
      emitError("operation defines " + std::to_string(Op->getNumResults()) +
                " results but " + std::to_string(ResultNames.size()) +
                " names were given");
      return nullptr;
    }
    for (unsigned I = 0; I < ResultNames.size(); ++I)
      defineValue(ResultNames[I], Op->getResult(I));
    return Op;
  }

  Operation *parseGenericOperation(Block *InsertInto) {
    std::string OpName = Cur.Spelling;
    advance();
    if (!expect(TokKind::LParen, "'(' after operation name"))
      return nullptr;
    std::vector<std::string> OperandNames;
    while (Cur.Kind == TokKind::PercentId) {
      OperandNames.push_back(Cur.Spelling);
      advance();
      if (!consumeIf(TokKind::Comma))
        break;
    }
    if (!expect(TokKind::RParen, "')' after operands"))
      return nullptr;

    // Skip region bodies for now, recording their source ranges.
    std::vector<size_t> RegionStarts;
    if (Cur.Kind == TokKind::LParen) {
      advance();
      while (Cur.Kind == TokKind::LBrace) {
        RegionStarts.push_back(Cur.Start);
        size_t End = skipBalancedBraces(Cur.Start);
        if (End == 0)
          return nullptr;
        Lex.setPos(End);
        advance();
        if (!consumeIf(TokKind::Comma))
          break;
      }
      if (!expect(TokKind::RParen, "')' after region list"))
        return nullptr;
    }

    std::vector<std::pair<std::string, Attribute>> Attrs;
    if (Cur.Kind == TokKind::LBrace && !parseAttrDict(Attrs))
      return nullptr;

    if (!expect(TokKind::Colon, "':' before operation type"))
      return nullptr;
    Type FnTy = parseType();
    if (!FnTy)
      return nullptr;
    auto FuncTy = FnTy.dyn_cast<FunctionType>();
    if (!FuncTy) {
      emitError("expected function type after ':'");
      return nullptr;
    }
    if (FuncTy.getNumInputs() != OperandNames.size()) {
      emitError("operand count mismatch with type signature");
      return nullptr;
    }

    OperationState State(Location::unknown(Context), OpName);
    for (unsigned I = 0; I < OperandNames.size(); ++I) {
      Value Operand = lookupValue(OperandNames[I]);
      if (!Operand) {
        emitError("use of undefined value '%" + OperandNames[I] + "'");
        return nullptr;
      }
      if (Operand.getType() != FuncTy.getInput(I)) {
        emitError("operand '%" + OperandNames[I] +
                  "' type mismatch: expected " + FuncTy.getInput(I).str() +
                  ", found " + Operand.getType().str());
        return nullptr;
      }
      State.addOperand(Operand);
    }
    State.addTypes(FuncTy.getResults());
    State.Attributes = std::move(Attrs);
    State.addRegions(RegionStarts.size());
    if (!Context->getRegisteredOperation(OpName)) {
      emitError("unregistered operation '" + OpName + "'");
      return nullptr;
    }
    Operation *Op = Operation::create(Context, State);
    InsertInto->push_back(Op);

    // Now parse the deferred region bodies.
    size_t Resume = Lex.getPos();
    Token ResumeTok = Cur;
    bool Isolated = Op->hasTrait(OpTrait::IsolatedFromAbove);
    for (unsigned I = 0; I < RegionStarts.size(); ++I) {
      Lex.setPos(RegionStarts[I]);
      advance();
      if (!parseRegionBody(Op->getRegion(I), Isolated))
        return nullptr;
    }
    Lex.setPos(Resume);
    Cur = ResumeTok;
    return Op;
  }

  /// Given the offset of a '{', returns the offset just past its matching
  /// '}'; 0 on error. Skips strings and comments.
  size_t skipBalancedBraces(size_t Start) {
    size_t Pos = Start;
    unsigned Depth = 0;
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '"') {
        ++Pos;
        while (Pos < Src.size() && Src[Pos] != '"') {
          if (Src[Pos] == '\\')
            ++Pos;
          ++Pos;
        }
        ++Pos;
        continue;
      }
      if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (C == '{')
        ++Depth;
      else if (C == '}') {
        --Depth;
        if (Depth == 0)
          return Pos + 1;
      }
      ++Pos;
    }
    emitError("unbalanced '{'");
    return 0;
  }

  /// Parses `{ (^label(args))? ops... }` into \p R.
  bool parseRegionBody(Region &R, bool Isolated) {
    if (!expect(TokKind::LBrace, "'{' to begin region"))
      return false;
    pushScope(Isolated);
    bool First = true;
    while (Cur.Kind != TokKind::RBrace) {
      Block *B;
      if (Cur.Kind == TokKind::CaretId) {
        advance();
        B = &R.emplaceBlock();
        if (consumeIf(TokKind::LParen)) {
          while (Cur.Kind == TokKind::PercentId) {
            std::string Name = Cur.Spelling;
            advance();
            if (!expect(TokKind::Colon, "':' after block argument name"))
              return false;
            Type ArgTy = parseType();
            if (!ArgTy)
              return false;
            defineValue(Name, B->addArgument(ArgTy));
            if (!consumeIf(TokKind::Comma))
              break;
          }
          if (!expect(TokKind::RParen, "')' after block arguments"))
            return false;
        }
        if (!expect(TokKind::Colon, "':' after block header"))
          return false;
      } else {
        if (!First) {
          emitError("expected block header or '}'");
          return false;
        }
        B = &R.emplaceBlock();
      }
      First = false;
      while (Cur.Kind != TokKind::RBrace && Cur.Kind != TokKind::CaretId) {
        if (!parseOperation(B))
          return false;
      }
    }
    popScope();
    return expect(TokKind::RBrace, "'}' to end region");
  }

  Operation *parseModuleOperation(Block *InsertInto) {
    advance(); // 'module'
    OperationState State(Location::unknown(Context), "builtin.module");
    if (Cur.Kind == TokKind::AtId) {
      State.addAttribute("sym_name", StringAttr::get(Context, Cur.Spelling));
      advance();
    }
    if (Cur.Kind == TokKind::Ident && Cur.Spelling == "attributes") {
      advance();
      std::vector<std::pair<std::string, Attribute>> Attrs;
      if (!parseAttrDict(Attrs))
        return nullptr;
      for (auto &Entry : Attrs)
        State.Attributes.push_back(std::move(Entry));
    }
    State.addRegion();
    Operation *Op = Operation::create(Context, State);
    InsertInto->push_back(Op);
    if (!parseRegionBody(Op->getRegion(0), /*Isolated=*/true))
      return nullptr;
    // Modules hold a single block.
    if (Op->getRegion(0).empty())
      Op->getRegion(0).emplaceBlock();
    return Op;
  }

  Operation *parseFuncOperation(Block *InsertInto) {
    advance(); // 'func.func'
    std::string Visibility;
    if (Cur.Kind == TokKind::Ident &&
        (Cur.Spelling == "private" || Cur.Spelling == "public")) {
      Visibility = Cur.Spelling;
      advance();
    }
    if (Cur.Kind != TokKind::AtId) {
      emitError("expected function name");
      return nullptr;
    }
    std::string Name = Cur.Spelling;
    advance();
    if (!expect(TokKind::LParen, "'(' in function signature"))
      return nullptr;

    std::vector<std::string> ArgNames;
    std::vector<Type> ArgTypes;
    bool IsDeclaration = false;
    while (Cur.Kind != TokKind::RParen) {
      if (Cur.Kind == TokKind::PercentId) {
        ArgNames.push_back(Cur.Spelling);
        advance();
        if (!expect(TokKind::Colon, "':' after argument name"))
          return nullptr;
      } else {
        IsDeclaration = true;
      }
      Type ArgTy = parseType();
      if (!ArgTy)
        return nullptr;
      ArgTypes.push_back(ArgTy);
      if (!consumeIf(TokKind::Comma))
        break;
    }
    if (!expect(TokKind::RParen, "')' in function signature"))
      return nullptr;

    std::vector<Type> ResultTypes;
    if (consumeIf(TokKind::Arrow)) {
      if (consumeIf(TokKind::LParen)) {
        while (Cur.Kind != TokKind::RParen) {
          Type ResultTy = parseType();
          if (!ResultTy)
            return nullptr;
          ResultTypes.push_back(ResultTy);
          if (!consumeIf(TokKind::Comma))
            break;
        }
        if (!expect(TokKind::RParen, "')' after result types"))
          return nullptr;
      } else {
        Type ResultTy = parseType();
        if (!ResultTy)
          return nullptr;
        ResultTypes.push_back(ResultTy);
      }
    }

    OperationState State(Location::unknown(Context), "func.func");
    State.addAttribute("sym_name", StringAttr::get(Context, Name));
    State.addAttribute(
        "function_type",
        TypeAttr::get(FunctionType::get(Context, ArgTypes, ResultTypes)));
    if (!Visibility.empty())
      State.addAttribute("sym_visibility",
                         StringAttr::get(Context, Visibility));
    if (Cur.Kind == TokKind::Ident && Cur.Spelling == "attributes") {
      advance();
      std::vector<std::pair<std::string, Attribute>> Attrs;
      if (!parseAttrDict(Attrs))
        return nullptr;
      for (auto &Entry : Attrs)
        State.Attributes.push_back(std::move(Entry));
    }
    State.addRegion();
    Operation *Op = Operation::create(Context, State);
    InsertInto->push_back(Op);

    bool HasBody = Cur.Kind == TokKind::LBrace && !IsDeclaration;
    if (HasBody) {
      advance(); // '{'
      pushScope(/*Isolated=*/true);
      Block &Entry = Op->getRegion(0).emplaceBlock();
      for (unsigned I = 0; I < ArgNames.size(); ++I)
        defineValue(ArgNames[I], Entry.addArgument(ArgTypes[I]));
      while (Cur.Kind != TokKind::RBrace) {
        if (!parseOperation(&Entry))
          return nullptr;
      }
      popScope();
      if (!expect(TokKind::RBrace, "'}' to end function body"))
        return nullptr;
    }
    return Op;
  }

  MLIRContext *Context;
  std::string_view Src;
  Lexer Lex;
  OpBuilder Builder;
  Token Cur;
  std::string ErrMsg;
  std::vector<Scope> Scopes;
};

} // namespace

OwningOpRef smlir::parseSourceString(MLIRContext *Context,
                                     std::string_view Source,
                                     std::string *ErrorMessage) {
  Parser TheParser(Context, Source);
  Operation *Op = TheParser.parseTopLevel();
  if (!Op) {
    if (ErrorMessage)
      *ErrorMessage = TheParser.getError();
    return OwningOpRef();
  }
  return OwningOpRef(Op);
}
