//===- PatternMatch.cpp - Pattern rewriting infrastructure -----------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/PatternMatch.h"

#include "ir/Block.h"

#include <algorithm>
#include <set>

using namespace smlir;

PatternRewriter::~PatternRewriter() = default;

void PatternRewriter::eraseOp(Operation *Op) {
  assert(Op->use_empty() && "erasing op with live uses");
  Op->erase();
}

void PatternRewriter::replaceOp(Operation *Op,
                                const std::vector<Value> &NewValues) {
  Op->replaceAllUsesWith(NewValues);
  eraseOp(Op);
}

RewritePattern::~RewritePattern() = default;

std::vector<const RewritePattern *>
RewritePatternSet::getBenefitOrdered() const {
  std::vector<const RewritePattern *> Ordered;
  Ordered.reserve(Patterns.size());
  for (const auto &Pattern : Patterns)
    Ordered.push_back(Pattern.get());
  std::stable_sort(Ordered.begin(), Ordered.end(),
                   [](const RewritePattern *A, const RewritePattern *B) {
                     return A->getBenefit() > B->getBenefit();
                   });
  return Ordered;
}

namespace {

/// Rewriter that keeps the greedy driver's worklist consistent with IR
/// mutations.
class GreedyDriver : public PatternRewriter {
public:
  explicit GreedyDriver(MLIRContext *Context) : PatternRewriter(Context) {}

  void addToWorklist(Operation *Op) {
    if (InSet.insert(Op).second)
      Worklist.push_back(Op);
  }

  Operation *popWorklist() {
    while (!Worklist.empty()) {
      Operation *Op = Worklist.back();
      Worklist.pop_back();
      if (InSet.erase(Op))
        return Op;
    }
    return nullptr;
  }

  Operation *insert(Operation *Op) override {
    PatternRewriter::insert(Op);
    addToWorklist(Op);
    return Op;
  }

  void eraseOp(Operation *Op) override {
    // Revisit producers: they may become dead.
    for (Value Operand : Op->getOperands())
      if (Operation *Def = Operand.getDefiningOp())
        addToWorklist(Def);
    // Purge the erased subtree from the worklist.
    Op->walk([&](Operation *Nested) {
      if (Nested != Op)
        InSet.erase(Nested);
    });
    InSet.erase(Op);
    Op->erase();
  }

  void replaceOp(Operation *Op,
                 const std::vector<Value> &NewValues) override {
    // Revisit consumers: they may now fold.
    for (Value Result : Op->getResults())
      for (OpOperand *Use : Result.getUses())
        addToWorklist(Use->getOwner());
    Op->replaceAllUsesWith(NewValues);
    eraseOp(Op);
  }

  bool isTriviallyDead(Operation *Op) const {
    return Op->use_empty() && !Op->hasTrait(OpTrait::IsTerminator) &&
           Op->isMemoryEffectFree();
  }

private:
  std::vector<Operation *> Worklist;
  std::set<Operation *> InSet;
};

/// Creates an `arith.constant` materializing \p Value of type \p Ty.
Operation *materializeConstant(PatternRewriter &Rewriter, Attribute Value,
                               Type Ty, Location Loc) {
  OperationState State(Loc, "arith.constant");
  State.addAttribute("value", Value);
  State.addType(Ty);
  return Rewriter.createOperation(State);
}

} // namespace

LogicalResult smlir::applyPatternsGreedily(Operation *Root,
                                           const RewritePatternSet &Patterns) {
  GreedyDriver Driver(Root->getContext());

  // Attempt higher-benefit patterns first, as getBenefit() promises.
  std::vector<const RewritePattern *> Ordered =
      Patterns.getBenefitOrdered();

  // Seed the worklist with all nested ops (not the root itself).
  Root->walk([&](Operation *Op) {
    if (Op != Root)
      Driver.addToWorklist(Op);
  });

  // Generous bound against non-converging pattern sets.
  int64_t Budget = 1000000;
  while (Operation *Op = Driver.popWorklist()) {
    if (--Budget < 0)
      return failure();

    if (Driver.isTriviallyDead(Op)) {
      Driver.eraseOp(Op);
      continue;
    }

    // Attempt to fold with constant operand values.
    if (Op->getNumResults() == 1 && !Op->hasTrait(OpTrait::ConstantLike)) {
      std::vector<Attribute> ConstOperands;
      ConstOperands.reserve(Op->getNumOperands());
      for (Value Operand : Op->getOperands()) {
        Operation *Def = Operand.getDefiningOp();
        ConstOperands.push_back(Def && Def->hasTrait(OpTrait::ConstantLike)
                                    ? Def->getAttr("value")
                                    : Attribute());
      }
      OpFoldResult Folded = Op->fold(ConstOperands);
      if (Folded.Val) {
        Driver.replaceOp(Op, {Folded.Val});
        continue;
      }
      if (Folded.Attr) {
        Driver.setInsertionPoint(Op);
        Operation *Constant = materializeConstant(
            Driver, Folded.Attr, Op->getResultType(0), Op->getLoc());
        Driver.replaceOp(Op, {Constant->getResult(0)});
        continue;
      }
    }

    // Attempt the rewrite patterns.
    for (const RewritePattern *Pattern : Ordered) {
      if (!Pattern->getRootName().empty() &&
          Pattern->getRootName() != Op->getName().getStringRef())
        continue;
      Driver.setInsertionPoint(Op);
      if (Pattern->matchAndRewrite(Op, Driver).succeeded())
        break; // Op may be gone; move on.
    }
  }
  return success();
}
