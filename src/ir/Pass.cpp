//===- Pass.cpp - Pass and pass manager infrastructure ---------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Pass.h"

#include "ir/Attributes.h"
#include "ir/Block.h"
#include "ir/MLIRContext.h"
#include "ir/Verifier.h"
#include "support/ErrorHandling.h"
#include "support/Telemetry.h"

#include <chrono>
#include <cstdio>
#include <ostream>
#include <sstream>

using namespace smlir;

Pass::~Pass() = default;

void Pass::printPipelineElement(std::ostream &OS) const { OS << Argument; }

/// Collects every `func.func` under \p Root (including \p Root itself),
/// resolving the OperationName once instead of string-comparing per op.
static std::vector<Operation *> collectFunctions(Operation *Root) {
  std::vector<Operation *> Functions;
  const AbstractOperation *FuncAbstract =
      Root->getContext()->getRegisteredOperation("func.func");
  if (!FuncAbstract)
    return Functions;
  OperationName FuncName(FuncAbstract);
  Root->walk([&](Operation *Op) {
    if (Op->getName() == FuncName)
      Functions.push_back(Op);
  });
  return Functions;
}

static std::string describeFunction(Operation *Func);

PassResult FunctionPass::runOnOperation(Operation *Root, AnalysisManager &AM) {
  // Collect functions first: passes may restructure the module.
  PreservedAnalyses Preserved = PreservedAnalyses::all();
  for (Operation *Func : collectFunctions(Root)) {
    PassResult Result = runOnFunction(Func, AM);
    Preserved.intersect(Result.getPreserved());
    if (Result.failed()) {
      std::string Message = "on function " + describeFunction(Func);
      if (!Result.getMessage().empty())
        Message += ": " + Result.getMessage();
      return {failure(), std::move(Preserved), std::move(Message)};
    }
  }
  return {success(), std::move(Preserved)};
}

/// "@name" of a function-like op, for nested-pass diagnostics.
static std::string describeFunction(Operation *Func) {
  if (auto Sym = Func->getAttrOfType<StringAttr>("sym_name"))
    return "@" + std::string(Sym.getValue());
  return "<unnamed function>";
}

PassResult FunctionPipelinePass::runOnOperation(Operation *Root,
                                                AnalysisManager &AM) {
  PreservedAnalyses Preserved = PreservedAnalyses::all();
  NestedTimingsMs.assign(Passes.size(), 0.0);
  for (Operation *Func : collectFunctions(Root)) {
    for (size_t PassIdx = 0, NumPasses = Passes.size(); PassIdx != NumPasses;
         ++PassIdx) {
      auto &P = Passes[PassIdx];
      telemetry::Span NestedSpan(P->getArgument(), "pass");
      if (NestedSpan.isActive())
        NestedSpan.arg("function", describeFunction(Func));
      auto Start = std::chrono::steady_clock::now();
      // FunctionPasses dispatch straight to their per-function hook; other
      // passes see the function as their root.
      PassResult Result = P->asFunctionPass()
                              ? P->asFunctionPass()->runOnFunction(Func, AM)
                              : P->runOnOperation(Func, AM);
      NestedTimingsMs[PassIdx] +=
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - Start)
              .count();
      Preserved.intersect(Result.getPreserved());
      AM.invalidate(Result.getPreserved());
      if (Result.failed()) {
        std::string Message = "nested pass '" + P->getName() +
                              "' failed on function " +
                              describeFunction(Func);
        if (!Result.getMessage().empty())
          Message += ": " + Result.getMessage();
        return {failure(), std::move(Preserved), std::move(Message)};
      }
      if (VerifyEach) {
        std::string Error;
        if (verify(Func, &Error).failed())
          return {failure(), std::move(Preserved),
                  "verification failed after nested pass '" + P->getName() +
                      "' on function " + describeFunction(Func) + ": " +
                      Error};
      }
    }
  }
  return {success(), std::move(Preserved)};
}

void FunctionPipelinePass::printPipelineElement(std::ostream &OS) const {
  OS << "func(";
  for (size_t I = 0, E = Passes.size(); I != E; ++I) {
    if (I)
      OS << ",";
    Passes[I]->printPipelineElement(OS);
  }
  OS << ")";
}

/// Delivers a failure diagnostic: into \p ErrorMessage when the caller
/// asked for it, to stderr otherwise (so failures are never silent).
static LogicalResult emitError(std::string Message,
                               std::string *ErrorMessage) {
  if (ErrorMessage)
    *ErrorMessage = std::move(Message);
  else
    std::fprintf(stderr, "%s\n", Message.c_str());
  return failure();
}

LogicalResult PassManager::run(Operation *Root, std::string *ErrorMessage) {
  AM.clear();
  TimingsMs.assign(Passes.size(), 0.0);
  NumExecuted = 0;
  telemetry::Span PipelineSpan("pass.pipeline", "compiler");
  if (PipelineSpan.isActive())
    PipelineSpan.arg("passes", Passes.size());
  for (auto &P : Passes)
    P->setNestedVerifier(VerifyEach);
  for (unsigned I = 0, E = Passes.size(); I != E; ++I) {
    Pass &P = *Passes[I];
    if (PrintBeforeEach) {
      std::fprintf(stderr, "// ----- IR before %s -----\n",
                   P.getName().c_str());
      Root->dump();
    }
    auto Start = std::chrono::steady_clock::now();
    PassResult Result = [&] {
      // Scoped so the span covers exactly the pass body, not the
      // verification and cache invalidation that follow.
      telemetry::Span PassSpan(P.getArgument(), "pass");
      return P.runOnOperation(Root, AM);
    }();
    auto End = std::chrono::steady_clock::now();
    TimingsMs[I] =
        std::chrono::duration<double, std::milli>(End - Start).count();
    telemetry::counter("pass.runs." + P.getArgument()).add();
    telemetry::counter("pass.us." + P.getArgument())
        .add(static_cast<uint64_t>(TimingsMs[I] * 1000.0));
    NumExecuted = I + 1;
    // Drop exactly the analyses the pass did not declare preserved.
    AM.invalidate(Result.getPreserved());

    if (Result.failed()) {
      std::string Message = "pass '" + P.getName() + "' failed";
      if (!Result.getMessage().empty())
        Message += ": " + Result.getMessage();
      return emitError(std::move(Message), ErrorMessage);
    }
    if (PrintAfterEach) {
      std::fprintf(stderr, "// ----- IR after %s -----\n",
                   P.getName().c_str());
      Root->dump();
    }
    if (VerifyEach) {
      std::string Error;
      if (verify(Root, &Error).failed())
        return emitError("verification failed after pass '" + P.getName() +
                             "': " + Error,
                         ErrorMessage);
    }
  }
  return success();
}

/// Prints \p P's statistics and recurses into nested pipeline elements so
/// counters of passes inside `func(...)` groups stay visible.
static void reportPassStatistics(std::ostream &OS, const Pass &P,
                                 unsigned Indent) {
  std::string Pad(Indent, ' ');
  for (const auto &[Stat, Count] : P.getStatistics())
    OS << Pad << Stat << ": " << Count << "\n";
  if (const auto *Nested = P.getNestedPasses())
    for (const auto &Child : *Nested) {
      OS << Pad << Child->getName() << "\n";
      reportPassStatistics(OS, *Child, Indent + 2);
    }
}

std::string PassManager::getReport() const {
  std::ostringstream OS;
  OS << "=== Pass report ===\n";
  for (unsigned I = 0, E = Passes.size(); I != E; ++I) {
    OS << "  " << Passes[I]->getName();
    if (I >= NumExecuted)
      OS << "  (not run)";
    else if (I < TimingsMs.size())
      OS << "  (" << TimingsMs[I] << " ms)";
    OS << "\n";
    reportPassStatistics(OS, *Passes[I], 4);
  }
  const auto &Queries = AM.getQueryStatistics();
  if (!Queries.empty()) {
    OS << "=== Analysis cache ===\n";
    for (const auto &[ID, S] : Queries)
      OS << "  " << S.Name << ": " << S.Hits << " hits, " << S.Misses
         << " misses\n";
  }
  return OS.str();
}

/// One "  0.0012 ( 34.5%)  name" row of the timing report.
static void printTimingRow(std::ostream &OS, double Ms, double TotalMs,
                           unsigned Indent, const std::string &Name) {
  double Share = TotalMs > 0.0 ? (Ms / TotalMs) * 100.0 : 0.0;
  char Row[64];
  std::snprintf(Row, sizeof(Row), "  %8.4f (%5.1f%%)  ", Ms / 1000.0, Share);
  OS << Row << std::string(Indent, ' ') << Name << "\n";
}

std::string PassManager::getTimingReport() const {
  double TotalMs = 0.0;
  for (unsigned I = 0; I < NumExecuted && I < TimingsMs.size(); ++I)
    TotalMs += TimingsMs[I];

  std::ostringstream OS;
  OS << "===" << std::string(73, '-') << "===\n";
  OS << "                      ... Pass execution timing report ...\n";
  OS << "===" << std::string(73, '-') << "===\n";
  char Total[64];
  std::snprintf(Total, sizeof(Total), "  Total Execution Time: %.4f seconds\n",
                TotalMs / 1000.0);
  OS << Total << "\n";
  OS << "  ----Wall Time----  ----Name----\n";
  for (unsigned I = 0; I < NumExecuted && I < TimingsMs.size(); ++I) {
    const Pass &P = *Passes[I];
    printTimingRow(OS, TimingsMs[I], TotalMs, 0, P.getArgument());
    // Nested `func(...)` pipelines report each child's time accumulated
    // across all functions; the remainder (walks, verification) shows up
    // as the difference to the parent row.
    if (const auto *Pipeline = dynamic_cast<const FunctionPipelinePass *>(&P)) {
      const auto &Children = Pipeline->getPasses();
      const auto &ChildMs = Pipeline->getNestedTimingsMs();
      for (size_t C = 0; C != Children.size() && C != ChildMs.size(); ++C)
        printTimingRow(OS, ChildMs[C], TotalMs, 2,
                       Children[C]->getArgument());
    }
  }
  printTimingRow(OS, TotalMs, TotalMs, 0, "Total");
  return OS.str();
}
