//===- Pass.cpp - Pass and pass manager infrastructure ---------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Pass.h"

#include "ir/Block.h"
#include "ir/Verifier.h"
#include "support/ErrorHandling.h"

#include <chrono>
#include <cstdio>
#include <sstream>

using namespace smlir;

Pass::~Pass() = default;

LogicalResult FunctionPass::runOnOperation(Operation *Root,
                                           AnalysisManager &AM) {
  // Collect functions first: passes may restructure the module.
  std::vector<Operation *> Functions;
  Root->walk([&](Operation *Op) {
    if (Op->getName().getStringRef() == "func.func")
      Functions.push_back(Op);
  });
  for (Operation *Func : Functions)
    if (runOnFunction(Func, AM).failed())
      return failure();
  return success();
}

LogicalResult PassManager::run(Operation *Root) {
  AnalysisManager AM;
  TimingsMs.assign(Passes.size(), 0.0);
  for (unsigned I = 0, E = Passes.size(); I != E; ++I) {
    Pass &P = *Passes[I];
    auto Start = std::chrono::steady_clock::now();
    LogicalResult Result = P.runOnOperation(Root, AM);
    auto End = std::chrono::steady_clock::now();
    TimingsMs[I] =
        std::chrono::duration<double, std::milli>(End - Start).count();
    // Transformations may have changed the IR arbitrarily.
    AM.invalidateAll();

    if (Result.failed()) {
      std::fprintf(stderr, "pass '%s' failed\n", P.getName().c_str());
      return failure();
    }
    if (PrintAfterEach) {
      std::fprintf(stderr, "// ----- IR after %s -----\n",
                   P.getName().c_str());
      Root->dump();
    }
    if (VerifyEach) {
      std::string Error;
      if (verify(Root, &Error).failed()) {
        std::fprintf(stderr, "verification failed after pass '%s': %s\n",
                     P.getName().c_str(), Error.c_str());
        return failure();
      }
    }
  }
  return success();
}

std::string PassManager::getReport() const {
  std::ostringstream OS;
  OS << "=== Pass report ===\n";
  for (unsigned I = 0, E = Passes.size(); I != E; ++I) {
    OS << "  " << Passes[I]->getName();
    if (I < TimingsMs.size())
      OS << "  (" << TimingsMs[I] << " ms)";
    OS << "\n";
    for (const auto &[Stat, Count] : Passes[I]->getStatistics())
      OS << "    " << Stat << ": " << Count << "\n";
  }
  return OS.str();
}
