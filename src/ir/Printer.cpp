//===- Printer.cpp - Textual IR printing -----------------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints operations in a parseable textual form: the MLIR generic operation
/// syntax for all ops, plus custom forms for `builtin.module` and
/// `func.func`. The parser (Parser.cpp) accepts exactly this format, giving
/// full print/parse round-tripping.
///
//===----------------------------------------------------------------------===//

#include "ir/Block.h"
#include "ir/Operation.h"
#include "support/STLExtras.h"

#include <ostream>
#include <unordered_map>

using namespace smlir;

namespace {

/// Stateful printer assigning SSA names while walking the IR tree.
class AsmPrinter {
public:
  explicit AsmPrinter(std::ostream &OS) : OS(OS) {}

  void printTopLevel(const Operation *Op) { printOp(Op); }

private:
  void indent() {
    for (unsigned I = 0; I < IndentLevel; ++I)
      OS << "  ";
  }

  const std::string &nameOf(Value Val) {
    auto It = Names.find(Val.getImpl());
    if (It != Names.end())
      return It->second;
    std::string Name = (Val.isBlockArgument() ? "%arg" : "%") +
                       std::to_string(NextId++);
    return Names.emplace(Val.getImpl(), std::move(Name)).first->second;
  }

  void printOp(const Operation *Op) {
    const std::string &OpName = Op->getName().getStringRef();
    indent();
    if (OpName == "builtin.module") {
      printModule(Op);
      return;
    }
    if (OpName == "func.func") {
      printFunc(Op);
      return;
    }
    printGenericOp(Op);
  }

  void printModule(const Operation *Op) {
    OS << "module";
    if (auto Name = Op->getAttrOfType<StringAttr>("sym_name"))
      OS << " @" << Name.getValue();
    printAttrDict(Op, {"sym_name"}, /*WithKeyword=*/true);
    OS << " ";
    printRegionBody(Op->getRegions()[0].get());
    OS << "\n";
  }

  void printFunc(const Operation *Op) {
    auto Name = Op->getAttrOfType<StringAttr>("sym_name");
    auto FuncTy =
        Op->getAttrOfType<TypeAttr>("function_type").getValue().cast<FunctionType>();
    OS << "func.func @" << Name.getValue() << "(";
    Region *Body = Op->getRegions()[0].get();
    bool HasBody = !Body->empty();
    if (HasBody) {
      Block &Entry = Body->front();
      interleaveComma(Entry.getArguments(), OS, [&](Value Arg) {
        OS << nameOf(Arg) << ": " << Arg.getType();
      });
    } else {
      interleaveComma(FuncTy.getInputs(), OS,
                      [&](Type Ty) { OS << Ty; });
    }
    OS << ")";
    if (FuncTy.getNumResults() > 0) {
      OS << " -> (";
      interleaveComma(FuncTy.getResults(), OS, [&](Type Ty) { OS << Ty; });
      OS << ")";
    }
    printAttrDict(Op, {"sym_name", "function_type"}, /*WithKeyword=*/true);
    if (HasBody) {
      OS << " ";
      printRegionBody(Body, /*PrintEntryArgs=*/false);
    }
    OS << "\n";
  }

  void printGenericOp(const Operation *Op) {
    if (Op->getNumResults() > 0) {
      interleaveComma(Op->getResults(), OS,
                      [&](Value Result) { OS << nameOf(Result); });
      OS << " = ";
    }
    OS << '"' << Op->getName().getStringRef() << "\"(";
    interleaveComma(Op->getOperands(), OS,
                    [&](Value Operand) { OS << nameOf(Operand); });
    OS << ")";
    if (Op->getNumRegions() > 0) {
      OS << " (";
      interleave(
          Op->getRegions(),
          [&](const std::unique_ptr<Region> &R) { printRegionBody(R.get()); },
          [&] { OS << ", "; });
      OS << ")";
    }
    printAttrDict(Op, {}, /*WithKeyword=*/false);
    OS << " : (";
    interleaveComma(Op->getOperands(), OS,
                    [&](Value Operand) { OS << Operand.getType(); });
    OS << ") -> (";
    interleaveComma(Op->getResults(), OS,
                    [&](Value Result) { OS << Result.getType(); });
    OS << ")\n";
  }

  /// Prints `{ blocks }`. When \p PrintEntryArgs is false the entry block
  /// header is suppressed (func signature already introduced the names).
  void printRegionBody(const Region *R, bool PrintEntryArgs = true) {
    OS << "{\n";
    ++IndentLevel;
    bool IsEntry = true;
    for (const auto &B : *R) {
      bool NeedsHeader =
          (!IsEntry) || (PrintEntryArgs && B->getNumArguments() > 0);
      if (NeedsHeader) {
        indent();
        OS << "^bb" << NextBlockId++ << "(";
        interleaveComma(B->getArguments(), OS, [&](Value Arg) {
          OS << nameOf(Arg) << ": " << Arg.getType();
        });
        OS << "):\n";
      }
      for (Operation *Nested : *B)
        printOp(Nested);
      IsEntry = false;
    }
    --IndentLevel;
    indent();
    OS << "}";
  }

  /// Prints the attribute dictionary, skipping names in \p Elided. With
  /// \p WithKeyword, prints ` attributes {...}` (custom-form style).
  void printAttrDict(const Operation *Op,
                     std::initializer_list<std::string_view> Elided,
                     bool WithKeyword) {
    std::vector<std::pair<std::string, Attribute>> ToPrint;
    for (const auto &[Name, Attr] : Op->getAttrs()) {
      bool IsElided = false;
      for (std::string_view E : Elided)
        IsElided |= (Name == E);
      if (!IsElided)
        ToPrint.emplace_back(Name, Attr);
    }
    if (ToPrint.empty())
      return;
    OS << (WithKeyword ? " attributes {" : " {");
    interleaveComma(ToPrint, OS, [&](const auto &Entry) {
      OS << Entry.first;
      if (!Entry.second.template isa<UnitAttr>())
        OS << " = " << Entry.second;
    });
    OS << "}";
  }

  std::ostream &OS;
  unsigned IndentLevel = 0;
  unsigned NextId = 0;
  unsigned NextBlockId = 0;
  std::unordered_map<detail::ValueImpl *, std::string> Names;
};

} // namespace

void Operation::print(std::ostream &OS) const {
  AsmPrinter Printer(OS);
  Printer.printTopLevel(this);
}
