//===- PassRegistry.h - Pass registration and textual pipelines -*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-global registry of passes by mnemonic, and the textual pass
/// pipeline language built on it:
///
///   pipeline ::= element (',' element)*
///   element  ::= mnemonic | 'func' '(' pipeline ')'
///
/// `func(...)` scopes the nested pipeline to every `func.func` in the
/// module (FunctionPipelinePass). Pipelines parse into a PassManager and
/// print back to the same string, so pass configurations travel as data:
/// the compiler driver's flows, `smlir-opt --pass-pipeline` and the
/// ablation benchmarks all go through this one entry point.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_PASSREGISTRY_H
#define SMLIR_IR_PASSREGISTRY_H

#include "ir/Pass.h"

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace smlir {

/// One registered pass: how to spell it in a pipeline and how to make it.
struct PassInfo {
  std::string Mnemonic;
  std::string Description;
  std::function<std::unique_ptr<Pass>()> Factory;
};

/// The process-global mnemonic -> PassInfo table. Registration is
/// idempotent: re-registering a mnemonic replaces the previous entry.
class PassRegistry {
public:
  static PassRegistry &get();

  void registerPass(std::string Mnemonic, std::string Description,
                    std::function<std::unique_ptr<Pass>()> Factory);

  /// Returns the entry for \p Mnemonic, or null if unknown.
  const PassInfo *lookup(std::string_view Mnemonic) const;

  /// All registered passes, sorted by mnemonic (for --list-passes).
  std::vector<const PassInfo *> getPassInfos() const;

private:
  std::vector<std::unique_ptr<PassInfo>> Infos;
};

/// RAII-style registration helper for static registration at namespace
/// scope: `static PassRegistration Reg("cse", "...", createCSEPass);`
struct PassRegistration {
  PassRegistration(std::string Mnemonic, std::string Description,
                   std::function<std::unique_ptr<Pass>()> Factory) {
    PassRegistry::get().registerPass(std::move(Mnemonic),
                                     std::move(Description),
                                     std::move(Factory));
  }
};

/// Parses \p Pipeline and appends the resulting passes to \p PM. On error
/// (unknown mnemonic, unbalanced parentheses, empty element), fails and
/// describes the problem in \p ErrorMessage; \p PM is left unchanged.
LogicalResult parsePassPipeline(std::string_view Pipeline, PassManager &PM,
                                std::string *ErrorMessage = nullptr);

/// Prints \p PM's passes back to pipeline syntax; the result re-parses to
/// an equivalent pipeline (round-trip property, tested).
std::string printPassPipeline(const PassManager &PM);

} // namespace smlir

#endif // SMLIR_IR_PASSREGISTRY_H
