//===- PatternMatch.h - Pattern rewriting infrastructure --------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrite patterns and the greedy pattern-application driver used by the
/// canonicalizer (paper §II-B: "gradual lowering process through dialect
/// conversion and pattern rewriting").
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_PATTERNMATCH_H
#define SMLIR_IR_PATTERNMATCH_H

#include "ir/Builders.h"
#include "support/LogicalResult.h"

#include <memory>
#include <string>
#include <vector>

namespace smlir {

/// Builder that also notifies the greedy driver about IR changes so the
/// worklist stays consistent.
class PatternRewriter : public OpBuilder {
public:
  explicit PatternRewriter(MLIRContext *Context) : OpBuilder(Context) {}
  virtual ~PatternRewriter();

  /// Erases \p Op (results must be unused after replacement).
  virtual void eraseOp(Operation *Op);

  /// Replaces all uses of \p Op's results with \p NewValues and erases it.
  virtual void replaceOp(Operation *Op, const std::vector<Value> &NewValues);

  /// Builds a replacement op and uses its results to replace \p Op. The
  /// caller's insertion point is left untouched (the new op is inserted at
  /// \p Op's position under an InsertionGuard).
  template <typename OpTy, typename... Args>
  OpTy replaceOpWithNewOp(Operation *Op, Args &&...BuildArgs) {
    InsertionGuard Guard(*this);
    setInsertionPoint(Op);
    OpTy NewOp =
        create<OpTy>(Op->getLoc(), std::forward<Args>(BuildArgs)...);
    replaceOp(Op, NewOp.getOperation()->getResults());
    return NewOp;
  }
};

/// A rewrite rule anchored on a specific operation name ("" matches any
/// operation).
class RewritePattern {
public:
  RewritePattern(std::string RootName, unsigned Benefit = 1)
      : RootName(std::move(RootName)), Benefit(Benefit) {}
  virtual ~RewritePattern();

  const std::string &getRootName() const { return RootName; }
  unsigned getBenefit() const { return Benefit; }

  /// Attempts to match \p Op and rewrite it through \p Rewriter. Returning
  /// success means the IR was modified.
  virtual LogicalResult matchAndRewrite(Operation *Op,
                                        PatternRewriter &Rewriter) const = 0;

private:
  std::string RootName;
  unsigned Benefit;
};

/// An ordered set of rewrite patterns.
class RewritePatternSet {
public:
  template <typename PatternT, typename... Args>
  void add(Args &&...PatternArgs) {
    Patterns.push_back(
        std::make_unique<PatternT>(std::forward<Args>(PatternArgs)...));
  }
  void add(std::unique_ptr<RewritePattern> Pattern) {
    Patterns.push_back(std::move(Pattern));
  }

  const std::vector<std::unique_ptr<RewritePattern>> &get() const {
    return Patterns;
  }

  /// The patterns ordered by descending benefit (stable within ties) —
  /// the application order every pattern driver uses.
  std::vector<const RewritePattern *> getBenefitOrdered() const;

private:
  std::vector<std::unique_ptr<RewritePattern>> Patterns;
};

/// Applies \p Patterns to all ops nested under \p Root until fixpoint,
/// interleaved with op folding and dead-code elimination of side-effect
/// free ops. Returns success if a fixpoint was reached (almost always).
LogicalResult applyPatternsGreedily(Operation *Root,
                                    const RewritePatternSet &Patterns);

} // namespace smlir

#endif // SMLIR_IR_PATTERNMATCH_H
