//===- Verifier.cpp - IR structural verification ---------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Block.h"
#include "ir/Operation.h"

#include <unordered_set>
#include <vector>

using namespace smlir;

namespace {

/// Verification context tracking visible SSA values while descending the
/// region tree.
class VerifierImpl {
public:
  LogicalResult verifyOp(Operation *Op) {
    // Operands must be non-null and visible at this point.
    for (unsigned I = 0, E = Op->getNumOperands(); I != E; ++I) {
      Value Operand = Op->getOperand(I);
      if (!Operand)
        return error(Op, "operand #" + std::to_string(I) + " is null");
      if (!isVisible(Operand))
        return error(Op, "operand #" + std::to_string(I) +
                             " does not dominate its use (or crosses an "
                             "isolated region)");
    }

    // Per-op invariants.
    if (Op->verifyInvariants().failed()) {
      if (Error.empty())
        Error = "operation '" + Op->getName().getStringRef() +
                "' failed to verify";
      return failure();
    }

    // Regions.
    bool Isolated = Op->hasTrait(OpTrait::IsolatedFromAbove);
    // Symbol-table bodies (module) hold symbol ops with no terminator;
    // every other non-empty block must end in one.
    bool RequiresTerminator = !Op->hasTrait(OpTrait::SymbolTable);
    for (auto &R : Op->getRegions()) {
      if (Isolated)
        Barriers.push_back(Visible.size());
      for (auto &B : *R) {
        // Block arguments become visible.
        size_t Mark = Visible.size();
        for (Value Arg : B->getArguments())
          Visible.push_back(Arg.getImpl());
        // Terminators may only appear last.
        for (Operation *Nested : *B) {
          if (Nested->hasTrait(OpTrait::IsTerminator) &&
              Nested->getNextNode())
            return error(Nested, "terminator is not the last operation in "
                                 "its block");
          if (verifyOp(Nested).failed())
            return failure();
          for (Value Result : Nested->getResults())
            Visible.push_back(Result.getImpl());
        }
        if (RequiresTerminator) {
          if (B->empty())
            return error(Op, "block is not terminated (block is empty)");
          if (!B->back()->hasTrait(OpTrait::IsTerminator))
            return error(B->back(),
                         "block is not terminated (last operation is not a "
                         "terminator)");
        }
        Visible.resize(Mark);
      }
      if (Isolated)
        Barriers.pop_back();
    }
    return success();
  }

  std::string Error;

private:
  bool isVisible(Value Val) const {
    size_t Floor = Barriers.empty() ? 0 : Barriers.back();
    for (size_t I = Visible.size(); I > Floor; --I)
      if (Visible[I - 1] == Val.getImpl())
        return true;
    return false;
  }

  LogicalResult error(Operation *Op, std::string Message) {
    Error = "'" + Op->getName().getStringRef() + "': " + std::move(Message);
    return failure();
  }

  std::vector<detail::ValueImpl *> Visible;
  std::vector<size_t> Barriers;
};

} // namespace

LogicalResult smlir::verify(Operation *Op, std::string *ErrorMessage) {
  VerifierImpl Impl;
  // Make the top-level op's own operands trivially visible (top-level ops
  // normally have none).
  LogicalResult Result = Impl.verifyOp(Op);
  if (Result.failed() && ErrorMessage)
    *ErrorMessage = Impl.Error;
  return Result;
}
