//===- Types.cpp - IR type system -----------------------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Types.h"

#include "ir/MLIRContext.h"
#include "support/ErrorHandling.h"

#include <sstream>

using namespace smlir;

//===----------------------------------------------------------------------===//
// Type
//===----------------------------------------------------------------------===//

MLIRContext *Type::getContext() const {
  assert(Impl && "null type");
  return Impl->Context;
}

TypeID Type::getTypeID() const {
  assert(Impl && "null type");
  return Impl->ID;
}

const std::string &Type::str() const {
  assert(Impl && "null type");
  return Impl->Key;
}

void Type::print(std::ostream &OS) const {
  OS << (Impl ? Impl->Key : std::string("<<null type>>"));
}

bool Type::isInteger(unsigned Width) const {
  auto IntTy = dyn_cast<IntegerType>();
  return IntTy && IntTy.getWidth() == Width;
}
bool Type::isIndex() const { return Impl && isa<IndexType>(); }
bool Type::isF32() const {
  auto FloatTy = dyn_cast<FloatType>();
  return FloatTy && FloatTy.getWidth() == 32;
}
bool Type::isF64() const {
  auto FloatTy = dyn_cast<FloatType>();
  return FloatTy && FloatTy.getWidth() == 64;
}
bool Type::isIntOrIndex() const {
  return Impl && (isa<IntegerType>() || isa<IndexType>());
}
bool Type::isFloat() const { return Impl && isa<FloatType>(); }

//===----------------------------------------------------------------------===//
// Storage classes
//===----------------------------------------------------------------------===//

namespace {

struct IntegerTypeStorage : detail::TypeStorage {
  IntegerTypeStorage(MLIRContext *Context, std::string Key, unsigned Width)
      : TypeStorage(TypeID::get<IntegerTypeStorage>(), Context,
                    std::move(Key)),
        Width(Width) {}
  unsigned Width;
};

struct FloatTypeStorage : detail::TypeStorage {
  FloatTypeStorage(MLIRContext *Context, std::string Key, unsigned Width)
      : TypeStorage(TypeID::get<FloatTypeStorage>(), Context, std::move(Key)),
        Width(Width) {}
  unsigned Width;
};

struct IndexTypeStorage : detail::TypeStorage {
  IndexTypeStorage(MLIRContext *Context, std::string Key)
      : TypeStorage(TypeID::get<IndexTypeStorage>(), Context,
                    std::move(Key)) {}
};

struct FunctionTypeStorage : detail::TypeStorage {
  FunctionTypeStorage(MLIRContext *Context, std::string Key,
                      std::vector<Type> Inputs, std::vector<Type> Results)
      : TypeStorage(TypeID::get<FunctionTypeStorage>(), Context,
                    std::move(Key)),
        Inputs(std::move(Inputs)), Results(std::move(Results)) {}
  std::vector<Type> Inputs;
  std::vector<Type> Results;
};

struct MemRefTypeStorage : detail::TypeStorage {
  MemRefTypeStorage(MLIRContext *Context, std::string Key,
                    std::vector<int64_t> Shape, Type ElementType,
                    MemorySpace Space)
      : TypeStorage(TypeID::get<MemRefTypeStorage>(), Context,
                    std::move(Key)),
        Shape(std::move(Shape)), ElementType(ElementType), Space(Space) {}
  std::vector<int64_t> Shape;
  Type ElementType;
  MemorySpace Space;
};

} // namespace

//===----------------------------------------------------------------------===//
// IntegerType
//===----------------------------------------------------------------------===//

IntegerType IntegerType::get(MLIRContext *Context, unsigned Width) {
  std::string Key = "i" + std::to_string(Width);
  auto *Storage = Context->getTypeStorage(Key, [&] {
    return std::make_unique<IntegerTypeStorage>(Context, Key, Width);
  });
  return IntegerType(Storage);
}

unsigned IntegerType::getWidth() const {
  return static_cast<const IntegerTypeStorage *>(Impl)->Width;
}

bool IntegerType::classof(Type Ty) {
  return Ty.getTypeID() == TypeID::get<IntegerTypeStorage>();
}

//===----------------------------------------------------------------------===//
// FloatType
//===----------------------------------------------------------------------===//

FloatType FloatType::get(MLIRContext *Context, unsigned Width) {
  assert((Width == 32 || Width == 64) && "only f32/f64 supported");
  std::string Key = "f" + std::to_string(Width);
  auto *Storage = Context->getTypeStorage(Key, [&] {
    return std::make_unique<FloatTypeStorage>(Context, Key, Width);
  });
  return FloatType(Storage);
}

unsigned FloatType::getWidth() const {
  return static_cast<const FloatTypeStorage *>(Impl)->Width;
}

bool FloatType::classof(Type Ty) {
  return Ty.getTypeID() == TypeID::get<FloatTypeStorage>();
}

//===----------------------------------------------------------------------===//
// IndexType
//===----------------------------------------------------------------------===//

IndexType IndexType::get(MLIRContext *Context) {
  std::string Key = "index";
  auto *Storage = Context->getTypeStorage(Key, [&] {
    return std::make_unique<IndexTypeStorage>(Context, Key);
  });
  return IndexType(Storage);
}

bool IndexType::classof(Type Ty) {
  return Ty.getTypeID() == TypeID::get<IndexTypeStorage>();
}

//===----------------------------------------------------------------------===//
// FunctionType
//===----------------------------------------------------------------------===//

FunctionType FunctionType::get(MLIRContext *Context, std::vector<Type> Inputs,
                               std::vector<Type> Results) {
  std::ostringstream Key;
  Key << "(";
  for (size_t I = 0; I < Inputs.size(); ++I) {
    if (I)
      Key << ", ";
    Key << Inputs[I].str();
  }
  Key << ") -> (";
  for (size_t I = 0; I < Results.size(); ++I) {
    if (I)
      Key << ", ";
    Key << Results[I].str();
  }
  Key << ")";
  std::string KeyStr = Key.str();
  auto *Storage = Context->getTypeStorage(KeyStr, [&] {
    return std::make_unique<FunctionTypeStorage>(
        Context, KeyStr, std::move(Inputs), std::move(Results));
  });
  return FunctionType(Storage);
}

const std::vector<Type> &FunctionType::getInputs() const {
  return static_cast<const FunctionTypeStorage *>(Impl)->Inputs;
}

const std::vector<Type> &FunctionType::getResults() const {
  return static_cast<const FunctionTypeStorage *>(Impl)->Results;
}

bool FunctionType::classof(Type Ty) {
  return Ty.getTypeID() == TypeID::get<FunctionTypeStorage>();
}

//===----------------------------------------------------------------------===//
// MemRefType
//===----------------------------------------------------------------------===//

MemRefType MemRefType::get(MLIRContext *Context, std::vector<int64_t> Shape,
                           Type ElementType, MemorySpace Space) {
  std::ostringstream Key;
  Key << "memref<";
  for (int64_t Dim : Shape) {
    if (Dim == kDynamic)
      Key << "?x";
    else
      Key << Dim << "x";
  }
  Key << ElementType.str();
  if (Space != MemorySpace::Global)
    Key << ", " << static_cast<uint32_t>(Space);
  Key << ">";
  std::string KeyStr = Key.str();
  auto *Storage = Context->getTypeStorage(KeyStr, [&] {
    return std::make_unique<MemRefTypeStorage>(Context, KeyStr,
                                               std::move(Shape), ElementType,
                                               Space);
  });
  return MemRefType(Storage);
}

const std::vector<int64_t> &MemRefType::getShape() const {
  return static_cast<const MemRefTypeStorage *>(Impl)->Shape;
}

Type MemRefType::getElementType() const {
  return static_cast<const MemRefTypeStorage *>(Impl)->ElementType;
}

MemorySpace MemRefType::getMemorySpace() const {
  return static_cast<const MemRefTypeStorage *>(Impl)->Space;
}

bool MemRefType::hasStaticShape() const {
  for (int64_t Dim : getShape())
    if (Dim == kDynamic)
      return false;
  return true;
}

int64_t MemRefType::getNumElements() const {
  assert(hasStaticShape() && "getNumElements on dynamic memref");
  int64_t Count = 1;
  for (int64_t Dim : getShape())
    Count *= Dim;
  return Count;
}

bool MemRefType::classof(Type Ty) {
  return Ty.getTypeID() == TypeID::get<MemRefTypeStorage>();
}
