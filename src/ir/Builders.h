//===- Builders.h - IR construction helpers ---------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OpBuilder: creates operations at a managed insertion point, mirroring
/// mlir::OpBuilder.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_BUILDERS_H
#define SMLIR_IR_BUILDERS_H

#include "ir/Block.h"
#include "ir/MLIRContext.h"
#include "ir/Operation.h"

#include <utility>

namespace smlir {

/// Creates operations and inserts them at a configurable insertion point.
class OpBuilder {
public:
  explicit OpBuilder(MLIRContext *Context) : Context(Context) {}
  virtual ~OpBuilder() = default;

  MLIRContext *getContext() const { return Context; }

  //===------------------------------------------------------------------===//
  // Insertion point management
  //===------------------------------------------------------------------===//

  /// Clears the insertion point: created ops are left detached.
  void clearInsertionPoint() {
    InsertBlock = nullptr;
    InsertBefore = nullptr;
  }
  void setInsertionPointToStart(Block *B) {
    InsertBlock = B;
    InsertBefore = B->front();
  }
  void setInsertionPointToEnd(Block *B) {
    InsertBlock = B;
    InsertBefore = nullptr;
  }
  /// Inserts before \p Op.
  void setInsertionPoint(Operation *Op) {
    InsertBlock = Op->getBlock();
    InsertBefore = Op;
  }
  /// Inserts after \p Op.
  void setInsertionPointAfter(Operation *Op) {
    InsertBlock = Op->getBlock();
    InsertBefore = Op->getNextNode();
  }

  Block *getInsertionBlock() const { return InsertBlock; }
  Operation *getInsertionPoint() const { return InsertBefore; }

  /// RAII guard restoring the insertion point on destruction.
  class InsertionGuard {
  public:
    explicit InsertionGuard(OpBuilder &Builder)
        : Builder(Builder), Block(Builder.InsertBlock),
          Before(Builder.InsertBefore) {}
    ~InsertionGuard() {
      Builder.InsertBlock = Block;
      Builder.InsertBefore = Before;
    }

  private:
    OpBuilder &Builder;
    smlir::Block *Block;
    Operation *Before;
  };

  //===------------------------------------------------------------------===//
  // Operation creation
  //===------------------------------------------------------------------===//

  /// Inserts \p Op (detached) at the insertion point; no-op when the
  /// insertion point is cleared. Virtual so pattern drivers can observe
  /// newly created operations.
  virtual Operation *insert(Operation *Op) {
    if (InsertBlock)
      InsertBlock->insertBefore(InsertBefore, Op);
    return Op;
  }

  /// Creates an op from \p State and inserts it.
  Operation *createOperation(const OperationState &State) {
    return insert(Operation::create(Context, State));
  }

  /// Builds an op of type \p OpTy via its static `build` method and inserts
  /// it.
  template <typename OpTy, typename... Args>
  OpTy create(Location Loc, Args &&...BuildArgs) {
    OperationState State(Loc, OpTy::getOperationName());
    OpTy::build(*this, State, std::forward<Args>(BuildArgs)...);
    return OpTy::cast(createOperation(State));
  }

  //===------------------------------------------------------------------===//
  // Common types, attributes, locations
  //===------------------------------------------------------------------===//

  Location getUnknownLoc() { return Location::unknown(Context); }
  IndexType getIndexType() { return IndexType::get(Context); }
  IntegerType getI1Type() { return IntegerType::get(Context, 1); }
  IntegerType getI32Type() { return IntegerType::get(Context, 32); }
  IntegerType getI64Type() { return IntegerType::get(Context, 64); }
  FloatType getF32Type() { return FloatType::get(Context, 32); }
  FloatType getF64Type() { return FloatType::get(Context, 64); }

  IntegerAttr getIndexAttr(int64_t Value) {
    return IntegerAttr::get(getIndexType(), Value);
  }
  IntegerAttr getI64IntegerAttr(int64_t Value) {
    return IntegerAttr::get(getI64Type(), Value);
  }
  IntegerAttr getI32IntegerAttr(int64_t Value) {
    return IntegerAttr::get(getI32Type(), Value);
  }
  IntegerAttr getBoolAttr(bool Value) {
    return IntegerAttr::get(getI1Type(), Value ? 1 : 0);
  }
  StringAttr getStringAttr(std::string_view Value) {
    return StringAttr::get(Context, Value);
  }

private:
  MLIRContext *Context;
  Block *InsertBlock = nullptr;
  Operation *InsertBefore = nullptr;
};

} // namespace smlir

#endif // SMLIR_IR_BUILDERS_H
