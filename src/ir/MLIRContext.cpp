//===- MLIRContext.cpp - Global IR context --------------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/MLIRContext.h"

#include "ir/Operation.h"
#include "support/ErrorHandling.h"

#include <cassert>
#include <mutex>
#include <set>
#include <unordered_map>

using namespace smlir;

Dialect::~Dialect() = default;

struct MLIRContext::Impl {
  /// Guards the uniquing tables (types, attributes, interned strings):
  /// compilation and interpretation can run on scheduler worker threads,
  /// and uniquing is the one context state they mutate. The dialect and
  /// operation registries are intentionally NOT locked on the read path:
  /// registration (registerAllDialects) must complete before the context
  /// is used concurrently, after which the registries are immutable.
  std::mutex UniquingMutex;
  /// Guards DestructionObservers (registrations race with each other on
  /// scheduler workers; the destructor moves the list out under the lock
  /// and invokes outside it, so an observer may take its own locks).
  std::mutex ObserverMutex;
  std::vector<std::function<void(MLIRContext *)>> DestructionObservers;
  std::unordered_map<std::string, std::unique_ptr<detail::TypeStorage>>
      TypeStorages;
  std::unordered_map<std::string, std::unique_ptr<detail::AttributeStorage>>
      AttributeStorages;
  std::set<std::string> InternedStrings;
  std::unordered_map<std::string, std::unique_ptr<Dialect>> Dialects;
  std::unordered_map<std::string, std::unique_ptr<AbstractOperation>>
      Operations;
  std::unordered_map<std::string, DialectTypeParseFn> TypeParsers;
};

MLIRContext::MLIRContext() : TheImpl(std::make_unique<Impl>()) {}

MLIRContext::~MLIRContext() {
  // Observers run first, while the uniquing tables and registries are
  // still intact: an observer releasing modules owned by this context
  // destroys real IR, which walks types and op descriptions.
  std::vector<std::function<void(MLIRContext *)>> Observers;
  {
    std::lock_guard<std::mutex> Lock(TheImpl->ObserverMutex);
    Observers.swap(TheImpl->DestructionObservers);
  }
  for (auto &Fn : Observers)
    Fn(this);
}

detail::TypeStorage *MLIRContext::getTypeStorage(
    const std::string &Key,
    const std::function<std::unique_ptr<detail::TypeStorage>()> &MakeFn) {
  std::lock_guard<std::mutex> Lock(TheImpl->UniquingMutex);
  auto It = TheImpl->TypeStorages.find(Key);
  if (It != TheImpl->TypeStorages.end())
    return It->second.get();
  auto Storage = MakeFn();
  assert(Storage->Key == Key && "storage key mismatch");
  auto *Raw = Storage.get();
  TheImpl->TypeStorages.emplace(Key, std::move(Storage));
  return Raw;
}

detail::AttributeStorage *MLIRContext::getAttributeStorage(
    const std::string &Key,
    const std::function<std::unique_ptr<detail::AttributeStorage>()>
        &MakeFn) {
  std::lock_guard<std::mutex> Lock(TheImpl->UniquingMutex);
  auto It = TheImpl->AttributeStorages.find(Key);
  if (It != TheImpl->AttributeStorages.end())
    return It->second.get();
  auto Storage = MakeFn();
  assert(Storage->Key == Key && "storage key mismatch");
  auto *Raw = Storage.get();
  TheImpl->AttributeStorages.emplace(Key, std::move(Storage));
  return Raw;
}

const std::string *MLIRContext::internString(std::string_view Str) {
  std::lock_guard<std::mutex> Lock(TheImpl->UniquingMutex);
  return &*TheImpl->InternedStrings.emplace(Str).first;
}

void MLIRContext::addDestructionObserver(
    std::function<void(MLIRContext *)> Fn) {
  std::lock_guard<std::mutex> Lock(TheImpl->ObserverMutex);
  TheImpl->DestructionObservers.push_back(std::move(Fn));
}

Dialect *MLIRContext::registerDialect(std::unique_ptr<Dialect> D) {
  assert(!getDialect(D->getNamespace()) && "dialect registered twice");
  auto *Raw = D.get();
  TheImpl->Dialects.emplace(D->getNamespace(), std::move(D));
  return Raw;
}

Dialect *MLIRContext::getDialect(std::string_view Name) const {
  auto It = TheImpl->Dialects.find(std::string(Name));
  return It == TheImpl->Dialects.end() ? nullptr : It->second.get();
}

void MLIRContext::registerOperation(std::unique_ptr<AbstractOperation> Op) {
  assert(!getRegisteredOperation(Op->getName()) &&
         "operation registered twice");
  TheImpl->Operations.emplace(Op->getName(), std::move(Op));
}

const AbstractOperation *
MLIRContext::getRegisteredOperation(std::string_view Name) const {
  auto It = TheImpl->Operations.find(std::string(Name));
  return It == TheImpl->Operations.end() ? nullptr : It->second.get();
}

void MLIRContext::registerTypeParser(std::string_view DialectName,
                                     DialectTypeParseFn ParseFn) {
  TheImpl->TypeParsers.emplace(std::string(DialectName), std::move(ParseFn));
}

const DialectTypeParseFn *
MLIRContext::getTypeParser(std::string_view DialectName) const {
  auto It = TheImpl->TypeParsers.find(std::string(DialectName));
  return It == TheImpl->TypeParsers.end() ? nullptr : &It->second;
}
