//===- Block.cpp - Blocks and regions --------------------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Block.h"

using namespace smlir;

//===----------------------------------------------------------------------===//
// Block
//===----------------------------------------------------------------------===//

Block::~Block() {
  // Drop all operand references first so deletion order does not matter.
  for (Operation *Op = FirstOp; Op; Op = Op->getNextNode())
    Op->dropAllReferences();
  Operation *Op = FirstOp;
  while (Op) {
    Operation *Next = Op->getNextNode();
    remove(Op);
    delete Op;
    Op = Next;
  }
}

Operation *Block::getParentOp() const {
  return ParentRegion ? ParentRegion->getParentOp() : nullptr;
}

Value Block::addArgument(Type Ty) {
  Arguments.push_back(
      std::make_unique<detail::BlockArgumentImpl>(Ty, this, Arguments.size()));
  return Value(Arguments.back().get());
}

std::vector<Value> Block::getArguments() const {
  std::vector<Value> Vals;
  Vals.reserve(Arguments.size());
  for (const auto &Arg : Arguments)
    Vals.push_back(Value(Arg.get()));
  return Vals;
}

void Block::eraseArgument(unsigned Index) {
  assert(Index < Arguments.size() && "argument index out of range");
  assert(Arguments[Index]->Uses.empty() && "erasing argument with uses");
  Arguments.erase(Arguments.begin() + Index);
  for (unsigned I = Index, E = Arguments.size(); I != E; ++I)
    Arguments[I]->Index = I;
}

unsigned Block::getNumOperations() const {
  unsigned Count = 0;
  for (Operation *Op = FirstOp; Op; Op = Op->getNextNode())
    ++Count;
  return Count;
}

void Block::push_back(Operation *Op) { insertBefore(nullptr, Op); }

void Block::insertBefore(Operation *Before, Operation *Op) {
  assert(!Op->ParentBlock && "op already in a block");
  assert((!Before || Before->ParentBlock == this) &&
         "insertion point not in this block");
  Op->ParentBlock = this;
  if (!Before) {
    // Append at the end.
    Op->PrevOp = LastOp;
    Op->NextOp = nullptr;
    if (LastOp)
      LastOp->NextOp = Op;
    else
      FirstOp = Op;
    LastOp = Op;
    return;
  }
  Op->NextOp = Before;
  Op->PrevOp = Before->PrevOp;
  if (Before->PrevOp)
    Before->PrevOp->NextOp = Op;
  else
    FirstOp = Op;
  Before->PrevOp = Op;
}

void Block::remove(Operation *Op) {
  assert(Op->ParentBlock == this && "op not in this block");
  if (Op->PrevOp)
    Op->PrevOp->NextOp = Op->NextOp;
  else
    FirstOp = Op->NextOp;
  if (Op->NextOp)
    Op->NextOp->PrevOp = Op->PrevOp;
  else
    LastOp = Op->PrevOp;
  Op->PrevOp = Op->NextOp = nullptr;
  Op->ParentBlock = nullptr;
}

Operation *Block::getTerminator() const {
  if (!LastOp || !LastOp->hasTrait(OpTrait::IsTerminator))
    return nullptr;
  return LastOp;
}

//===----------------------------------------------------------------------===//
// Region
//===----------------------------------------------------------------------===//

Block &Region::emplaceBlock() {
  Blocks.push_back(std::make_unique<Block>());
  Blocks.back()->ParentRegion = this;
  return *Blocks.back();
}

void Region::takeBody(Region &Other) {
  assert(Blocks.empty() && "takeBody into non-empty region");
  Blocks = std::move(Other.Blocks);
  Other.Blocks.clear();
  for (auto &B : Blocks)
    B->ParentRegion = this;
}
