//===- Verifier.h - IR structural verification ------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive IR verification: SSA visibility (def-before-use, region
/// nesting, isolation), terminator placement, and per-op invariants via the
/// registered verify hooks.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_VERIFIER_H
#define SMLIR_IR_VERIFIER_H

#include "support/LogicalResult.h"

#include <string>

namespace smlir {

class Operation;

/// Verifies \p Op and all nested operations. On failure returns failure()
/// and fills \p ErrorMessage (if non-null) with a description of the first
/// problem found.
LogicalResult verify(Operation *Op, std::string *ErrorMessage = nullptr);

} // namespace smlir

#endif // SMLIR_IR_VERIFIER_H
