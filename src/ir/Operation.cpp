//===- Operation.cpp - IR operations ---------------------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Operation.h"

#include "ir/Block.h"
#include "ir/MLIRContext.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <cstdio>
#include <sstream>

using namespace smlir;

//===----------------------------------------------------------------------===//
// Location
//===----------------------------------------------------------------------===//

Location Location::unknown(MLIRContext *Context) {
  return Location(Context->internString("?"));
}

Location Location::get(MLIRContext *Context, std::string_view Desc) {
  return Location(Context->internString(Desc));
}

const std::string &Location::str() const {
  static const std::string Unknown = "?";
  return Str ? *Str : Unknown;
}

//===----------------------------------------------------------------------===//
// Value methods that need Operation/Block
//===----------------------------------------------------------------------===//

Operation *Value::getDefiningOp() const {
  assert(Impl && "null value");
  if (auto *Result = dyn_cast<detail::OpResultImpl>(Impl))
    return Result->Owner;
  return nullptr;
}

Block *Value::getParentBlock() const {
  assert(Impl && "null value");
  if (auto *Result = dyn_cast<detail::OpResultImpl>(Impl))
    return Result->Owner->getBlock();
  return cast<detail::BlockArgumentImpl>(Impl)->Owner;
}

unsigned Value::getIndex() const {
  assert(Impl && "null value");
  if (auto *Result = dyn_cast<detail::OpResultImpl>(Impl))
    return Result->Index;
  return cast<detail::BlockArgumentImpl>(Impl)->Index;
}

Block *Value::getOwnerBlock() const {
  return cast<detail::BlockArgumentImpl>(Impl)->Owner;
}

void Value::replaceAllUsesWith(Value NewValue) {
  assert(Impl && "null value");
  assert(NewValue && "replacement must be non-null");
  // Copy the use list: OpOperand::set mutates it.
  std::vector<OpOperand *> Uses = Impl->Uses;
  for (OpOperand *Use : Uses)
    Use->set(NewValue);
}

//===----------------------------------------------------------------------===//
// Operation
//===----------------------------------------------------------------------===//

Operation::Operation(MLIRContext *Context, OperationName Name, Location Loc)
    : Context(Context), Name(Name), Loc(Loc) {}

Operation *Operation::create(MLIRContext *Context,
                             const OperationState &State) {
  const AbstractOperation *Abstract =
      Context->getRegisteredOperation(State.Name);
  if (!Abstract)
    reportFatalError("creating unregistered operation '" + State.Name + "'");

  auto *Op = new Operation(Context, OperationName(Abstract), State.Loc);
  Op->Operands.reserve(State.Operands.size());
  for (unsigned I = 0, E = State.Operands.size(); I != E; ++I)
    Op->Operands.push_back(
        std::make_unique<OpOperand>(Op, I, State.Operands[I]));
  Op->Results.reserve(State.Types.size());
  for (unsigned I = 0, E = State.Types.size(); I != E; ++I)
    Op->Results.push_back(
        std::make_unique<detail::OpResultImpl>(State.Types[I], Op, I));
  for (const auto &[AttrName, Attr] : State.Attributes)
    Op->Attrs[AttrName] = Attr;
  for (unsigned I = 0; I != State.NumRegions; ++I)
    Op->Regions.push_back(std::make_unique<Region>(Op));
  return Op;
}

Operation::~Operation() {
  assert(!ParentBlock && "deleting an operation still linked in a block");
  // Regions are destroyed first so nested uses of our results disappear
  // before the results do.
  Regions.clear();
  Operands.clear();
#ifndef NDEBUG
  for (auto &Result : Results)
    assert(Result->Uses.empty() && "deleting op with live uses");
#endif
}

std::vector<Value> Operation::getOperands() const {
  std::vector<Value> Vals;
  Vals.reserve(Operands.size());
  for (const auto &Operand : Operands)
    Vals.push_back(Operand->get());
  return Vals;
}

void Operation::addOperand(Value Val) {
  Operands.push_back(std::make_unique<OpOperand>(this, Operands.size(), Val));
}

void Operation::eraseOperand(unsigned Index) {
  assert(Index < Operands.size() && "operand index out of range");
  Operands.erase(Operands.begin() + Index);
  // Fix the cached indices of trailing operands. OpOperand has no setter for
  // its index by design; recreate the trailing operands instead.
  for (unsigned I = Index, E = Operands.size(); I != E; ++I) {
    Value Val = Operands[I]->get();
    Operands[I] = std::make_unique<OpOperand>(this, I, Val);
  }
}

std::vector<Value> Operation::getResults() const {
  std::vector<Value> Vals;
  Vals.reserve(Results.size());
  for (const auto &Result : Results)
    Vals.push_back(Value(Result.get()));
  return Vals;
}

bool Operation::use_empty() const {
  for (const auto &Result : Results)
    if (!Result->Uses.empty())
      return false;
  return true;
}

void Operation::replaceAllUsesWith(const std::vector<Value> &NewValues) {
  assert(NewValues.size() == Results.size() && "arity mismatch");
  for (unsigned I = 0, E = Results.size(); I != E; ++I)
    getResult(I).replaceAllUsesWith(NewValues[I]);
}

Attribute Operation::getAttr(std::string_view AttrName) const {
  auto It = Attrs.find(AttrName);
  return It == Attrs.end() ? Attribute() : It->second;
}

void Operation::setAttr(std::string_view AttrName, Attribute Attr) {
  Attrs[std::string(AttrName)] = Attr;
}

void Operation::removeAttr(std::string_view AttrName) {
  auto It = Attrs.find(AttrName);
  if (It != Attrs.end())
    Attrs.erase(It);
}

Region *Operation::getParentRegion() const {
  return ParentBlock ? ParentBlock->getParent() : nullptr;
}

Operation *Operation::getParentOp() const {
  Region *Parent = getParentRegion();
  return Parent ? Parent->getParentOp() : nullptr;
}

Operation *Operation::getParentOfName(std::string_view OpName) const {
  for (Operation *Op = getParentOp(); Op; Op = Op->getParentOp())
    if (Op->getName().getStringRef() == OpName)
      return Op;
  return nullptr;
}

bool Operation::isProperAncestor(Operation *Other) const {
  for (Operation *Op = Other->getParentOp(); Op; Op = Op->getParentOp())
    if (Op == this)
      return true;
  return false;
}

void Operation::remove() {
  if (ParentBlock)
    ParentBlock->remove(this);
}

void Operation::erase() {
  remove();
  delete this;
}

void Operation::moveBefore(Operation *Other) {
  remove();
  Other->getBlock()->insertBefore(Other, this);
}

void Operation::moveAfter(Operation *Other) {
  remove();
  Other->getBlock()->insertBefore(Other->getNextNode(), this);
}

void Operation::dropAllReferences() {
  for (auto &Operand : Operands)
    Operand->set(Value());
  // Nested operations may reference values defined in the surrounding
  // blocks; drop those links too so teardown order does not matter.
  for (auto &R : Regions)
    for (auto &B : *R)
      for (Operation *Nested : *B)
        Nested->dropAllReferences();
}

LogicalResult Operation::verifyInvariants() {
  if (auto *Verify = Name.getAbstractOperation()->getVerifyFn())
    return Verify(this);
  return success();
}

OpFoldResult Operation::fold(const std::vector<Attribute> &ConstOperands) {
  if (auto *Fold = Name.getAbstractOperation()->getFoldFn())
    return Fold(this, ConstOperands);
  return OpFoldResult();
}

bool Operation::getEffects(std::vector<MemoryEffect> &Effects) const {
  const AbstractOperation *Abstract = Name.getAbstractOperation();
  if (Abstract->hasTrait(OpTrait::Pure) ||
      Abstract->hasTrait(OpTrait::IsTerminator))
    return true;
  if (Abstract->hasTrait(OpTrait::RecursiveMemoryEffects)) {
    // Aggregate effects of nested operations.
    bool Known = true;
    for (const auto &R : Regions)
      for (const auto &B : *R)
        for (Operation *Nested : *B)
          Known &= Nested->getEffects(Effects);
    return Known;
  }
  if (auto *EffectsFn = Abstract->getEffectsFn()) {
    EffectsFn(const_cast<Operation *>(this), Effects);
    return true;
  }
  return false;
}

bool Operation::isMemoryEffectFree() const {
  if (hasTrait(OpTrait::Pure))
    return true;
  std::vector<MemoryEffect> Effects;
  if (!getEffects(Effects))
    return false;
  return Effects.empty();
}

void Operation::walk(const std::function<void(Operation *)> &Callback) {
  for (auto &R : Regions) {
    for (auto &B : *R) {
      Operation *Op = B->front();
      while (Op) {
        // Capture the next op first: the callback may erase Op.
        Operation *Next = Op->getNextNode();
        Op->walk(Callback);
        Op = Next;
      }
    }
  }
  Callback(this);
}

Operation *Operation::clone(IRMapping &Mapper) const {
  OperationState State(Loc, Name.getStringRef());
  for (const auto &Operand : Operands)
    State.addOperand(Mapper.lookupOrSelf(Operand->get()));
  for (const auto &Result : Results)
    State.addType(Result->Ty);
  for (const auto &[AttrName, Attr] : Attrs)
    State.addAttribute(AttrName, Attr);
  State.addRegions(Regions.size());
  Operation *Clone = Operation::create(Context, State);
  for (unsigned I = 0, E = Results.size(); I != E; ++I)
    Mapper.map(Value(Results[I].get()), Clone->getResult(I));
  for (unsigned RI = 0, RE = Regions.size(); RI != RE; ++RI) {
    for (const auto &B : *Regions[RI]) {
      Block &NewBlock = Clone->getRegion(RI).emplaceBlock();
      for (Value Arg : B->getArguments())
        Mapper.map(Arg, NewBlock.addArgument(Arg.getType()));
      for (Operation *Nested : *B)
        NewBlock.push_back(Nested->clone(Mapper));
    }
  }
  return Clone;
}

std::string Operation::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

void Operation::dump() const { std::fputs((str() + "\n").c_str(), stderr); }
