//===- OpDefinition.h - Concrete op wrapper infrastructure ------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CRTP base class for concrete operation wrappers (the equivalent of
/// TableGen-generated op classes in MLIR) and the registration helper
/// dialects use to install their ops into a context.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_IR_OPDEFINITION_H
#define SMLIR_IR_OPDEFINITION_H

#include "ir/MLIRContext.h"
#include "ir/Operation.h"

#include <memory>

namespace smlir {

/// CRTP base for typed operation wrappers. A wrapper is a thin,
/// value-semantic view over an `Operation *` whose name matches
/// `ConcreteOp::getOperationName()`.
template <typename ConcreteOp>
class OpBase {
public:
  /*implicit*/ OpBase(Operation *Op = nullptr) : TheOp(Op) {}

  static bool classof(Operation *Op) {
    return Op->getName().getStringRef() == ConcreteOp::getOperationName();
  }

  /// Returns a wrapper if \p Op has the right name, a null wrapper
  /// otherwise. Accepts null input.
  static ConcreteOp dyn_cast(Operation *Op) {
    return Op && classof(Op) ? ConcreteOp(Op) : ConcreteOp(nullptr);
  }
  static ConcreteOp cast(Operation *Op) {
    assert(Op && classof(Op) && "cast to incompatible op");
    return ConcreteOp(Op);
  }

  explicit operator bool() const { return TheOp != nullptr; }
  Operation *operator->() const { return TheOp; }
  Operation *getOperation() const { return TheOp; }
  MLIRContext *getContext() const { return TheOp->getContext(); }
  Location getLoc() const { return TheOp->getLoc(); }
  bool operator==(const OpBase &Other) const { return TheOp == Other.TheOp; }

protected:
  Operation *TheOp;
};

/// Configuration passed when registering an op kind.
struct OpRegistration {
  uint64_t Traits = 0;
  AbstractOperation::VerifyFn Verify = nullptr;
  AbstractOperation::FoldFn Fold = nullptr;
  AbstractOperation::EffectsFn Effects = nullptr;
};

/// Combines OpTrait flags into a bitmask.
inline uint64_t traits() { return 0; }
template <typename... Rest>
uint64_t traits(OpTrait First, Rest... Others) {
  return static_cast<uint64_t>(First) | traits(Others...);
}

/// Registers op kind \p OpTy with \p Context on behalf of \p OpDialect.
template <typename OpTy>
void registerOp(MLIRContext &Context, Dialect *OpDialect,
                OpRegistration Config = {}) {
  Context.registerOperation(std::make_unique<AbstractOperation>(
      OpTy::getOperationName(), OpDialect, Config.Traits, Config.Verify,
      Config.Fold, Config.Effects));
}

} // namespace smlir

#endif // SMLIR_IR_OPDEFINITION_H
