//===- Arith.h - Arithmetic and math dialects -------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arith dialect (constants, integer/float arithmetic, comparisons,
/// select, casts) with constant folding, and the small math dialect (sqrt,
/// exp, fabs) used by the benchmark kernels.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_DIALECT_ARITH_H
#define SMLIR_DIALECT_ARITH_H

#include "ir/Builders.h"
#include "ir/OpDefinition.h"

#include <optional>

namespace smlir {
namespace arith {

//===----------------------------------------------------------------------===//
// ConstantOp
//===----------------------------------------------------------------------===//

/// Materializes a compile-time constant from its `value` attribute.
class ConstantOp : public OpBase<ConstantOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "arith.constant"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    Attribute Value);

  Attribute getValue() const { return TheOp->getAttr("value"); }

  static LogicalResult verifyOp(Operation *Op);
};

/// Convenience constant builders.
Value createIndexConstant(OpBuilder &Builder, Location Loc, int64_t Value);
Value createIntConstant(OpBuilder &Builder, Location Loc, Type Ty,
                        int64_t Value);
Value createFloatConstant(OpBuilder &Builder, Location Loc, Type Ty,
                          double Value);
Value createBoolConstant(OpBuilder &Builder, Location Loc, bool Value);

//===----------------------------------------------------------------------===//
// Binary operations
//===----------------------------------------------------------------------===//

/// Declares a same-type binary arithmetic op wrapper class.
#define SMLIR_DECLARE_BINARY_OP(ClassName, OpName)                            \
  class ClassName : public OpBase<ClassName> {                                \
  public:                                                                     \
    using OpBase::OpBase;                                                     \
    static constexpr const char *getOperationName() { return OpName; }        \
    static void build(OpBuilder &Builder, OperationState &State, Value Lhs,   \
                      Value Rhs) {                                            \
      State.addOperands({Lhs, Rhs});                                          \
      State.addType(Lhs.getType());                                           \
    }                                                                         \
    Value getLhs() const { return TheOp->getOperand(0); }                     \
    Value getRhs() const { return TheOp->getOperand(1); }                     \
  };

SMLIR_DECLARE_BINARY_OP(AddIOp, "arith.addi")
SMLIR_DECLARE_BINARY_OP(SubIOp, "arith.subi")
SMLIR_DECLARE_BINARY_OP(MulIOp, "arith.muli")
SMLIR_DECLARE_BINARY_OP(DivSIOp, "arith.divsi")
SMLIR_DECLARE_BINARY_OP(RemSIOp, "arith.remsi")
SMLIR_DECLARE_BINARY_OP(AndIOp, "arith.andi")
SMLIR_DECLARE_BINARY_OP(OrIOp, "arith.ori")
SMLIR_DECLARE_BINARY_OP(XOrIOp, "arith.xori")
SMLIR_DECLARE_BINARY_OP(MinSIOp, "arith.minsi")
SMLIR_DECLARE_BINARY_OP(MaxSIOp, "arith.maxsi")
SMLIR_DECLARE_BINARY_OP(AddFOp, "arith.addf")
SMLIR_DECLARE_BINARY_OP(SubFOp, "arith.subf")
SMLIR_DECLARE_BINARY_OP(MulFOp, "arith.mulf")
SMLIR_DECLARE_BINARY_OP(DivFOp, "arith.divf")
SMLIR_DECLARE_BINARY_OP(MinFOp, "arith.minf")
SMLIR_DECLARE_BINARY_OP(MaxFOp, "arith.maxf")

#undef SMLIR_DECLARE_BINARY_OP

//===----------------------------------------------------------------------===//
// Unary operations and casts
//===----------------------------------------------------------------------===//

/// Declares a unary op wrapper whose result type equals the operand type.
#define SMLIR_DECLARE_UNARY_OP(ClassName, OpName)                             \
  class ClassName : public OpBase<ClassName> {                                \
  public:                                                                     \
    using OpBase::OpBase;                                                     \
    static constexpr const char *getOperationName() { return OpName; }        \
    static void build(OpBuilder &Builder, OperationState &State,              \
                      Value Operand) {                                        \
      State.addOperand(Operand);                                              \
      State.addType(Operand.getType());                                       \
    }                                                                         \
    Value getOperand() const { return TheOp->getOperand(0); }                 \
  };

SMLIR_DECLARE_UNARY_OP(NegFOp, "arith.negf")

/// Declares a cast op wrapper whose result type is given at build time.
#define SMLIR_DECLARE_CAST_OP(ClassName, OpName)                              \
  class ClassName : public OpBase<ClassName> {                                \
  public:                                                                     \
    using OpBase::OpBase;                                                     \
    static constexpr const char *getOperationName() { return OpName; }        \
    static void build(OpBuilder &Builder, OperationState &State,              \
                      Value Operand, Type ResultTy) {                         \
      State.addOperand(Operand);                                              \
      State.addType(ResultTy);                                                \
    }                                                                         \
    Value getOperand() const { return TheOp->getOperand(0); }                 \
  };

SMLIR_DECLARE_CAST_OP(IndexCastOp, "arith.index_cast")
SMLIR_DECLARE_CAST_OP(SIToFPOp, "arith.sitofp")
SMLIR_DECLARE_CAST_OP(FPToSIOp, "arith.fptosi")
SMLIR_DECLARE_CAST_OP(ExtSIOp, "arith.extsi")
SMLIR_DECLARE_CAST_OP(TruncIOp, "arith.trunci")

#undef SMLIR_DECLARE_CAST_OP

//===----------------------------------------------------------------------===//
// Comparisons and select
//===----------------------------------------------------------------------===//

/// Integer comparison predicates (also used for index values).
enum class CmpIPredicate { eq, ne, slt, sle, sgt, sge };

/// Float comparison predicates (ordered comparisons).
enum class CmpFPredicate { oeq, one, olt, ole, ogt, oge };

std::string_view stringifyCmpIPredicate(CmpIPredicate Pred);
std::optional<CmpIPredicate> parseCmpIPredicate(std::string_view Str);
std::string_view stringifyCmpFPredicate(CmpFPredicate Pred);
std::optional<CmpFPredicate> parseCmpFPredicate(std::string_view Str);

/// Integer/index comparison yielding i1.
class CmpIOp : public OpBase<CmpIOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "arith.cmpi"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    CmpIPredicate Pred, Value Lhs, Value Rhs);

  CmpIPredicate getPredicate() const;
  Value getLhs() const { return TheOp->getOperand(0); }
  Value getRhs() const { return TheOp->getOperand(1); }

  static LogicalResult verifyOp(Operation *Op);
};

/// Float comparison yielding i1.
class CmpFOp : public OpBase<CmpFOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "arith.cmpf"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    CmpFPredicate Pred, Value Lhs, Value Rhs);

  CmpFPredicate getPredicate() const;
  Value getLhs() const { return TheOp->getOperand(0); }
  Value getRhs() const { return TheOp->getOperand(1); }

  static LogicalResult verifyOp(Operation *Op);
};

/// Ternary select: `cond ? trueValue : falseValue`.
class SelectOp : public OpBase<SelectOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "arith.select"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    Value Condition, Value TrueValue, Value FalseValue);

  Value getCondition() const { return TheOp->getOperand(0); }
  Value getTrueValue() const { return TheOp->getOperand(1); }
  Value getFalseValue() const { return TheOp->getOperand(2); }

  static LogicalResult verifyOp(Operation *Op);
};

/// Registers the arith dialect (with folders).
void registerArithDialect(MLIRContext &Context);

} // namespace arith

namespace math {

#define SMLIR_DECLARE_MATH_OP(ClassName, OpName)                              \
  class ClassName : public OpBase<ClassName> {                                \
  public:                                                                     \
    using OpBase::OpBase;                                                     \
    static constexpr const char *getOperationName() { return OpName; }        \
    static void build(OpBuilder &Builder, OperationState &State,              \
                      Value Operand) {                                        \
      State.addOperand(Operand);                                              \
      State.addType(Operand.getType());                                       \
    }                                                                         \
    Value getOperand() const { return TheOp->getOperand(0); }                 \
  };

SMLIR_DECLARE_MATH_OP(SqrtOp, "math.sqrt")
SMLIR_DECLARE_MATH_OP(ExpOp, "math.exp")
SMLIR_DECLARE_MATH_OP(FAbsOp, "math.fabs")

#undef SMLIR_DECLARE_MATH_OP

/// Registers the math dialect.
void registerMathDialect(MLIRContext &Context);

} // namespace math

/// If \p Val is defined by an integer-typed arith.constant, returns its
/// value.
std::optional<int64_t> getConstantIntValue(Value Val);

/// If \p Val is defined by a float-typed arith.constant, returns its value.
std::optional<double> getConstantFloatValue(Value Val);

} // namespace smlir

#endif // SMLIR_DIALECT_ARITH_H
