//===- RuntimeABI.h - Simulated DPC++ runtime ABI ---------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The (simulated) DPC++ runtime ABI: mangled symbol names for the SYCL
/// runtime entry points that appear in LLVM IR produced from SYCL host
/// code. The frontend's host importer emits `llvm.call`s to these symbols;
/// the Host Raising pass (paper §VII-A) pattern-matches them back. The
/// paper notes this coupling explicitly: "changes to SYCL runtime code can
/// lead to raising pattern matching to fail, forcing this pass to be
/// up-to-date with runtime changes" — encoding both directions against one
/// ABI table reproduces that design point.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_DIALECT_RUNTIMEABI_H
#define SMLIR_DIALECT_RUNTIMEABI_H

#include "dialect/SYCL.h"

#include <optional>
#include <string>

namespace smlir {
namespace abi {

/// What a runtime call does, recovered from its mangled name.
struct CallInfo {
  enum class Kind {
    RangeCtor,
    IDCtor,
    BufferCtor,
    AccessorCtor,
    LocalAccessorCtor,
    ParallelFor,
    Unknown,
  };

  Kind CallKind = Kind::Unknown;
  unsigned Dim = 1;
  Type ElementType;                 // Buffer/accessor element type.
  sycl::AccessMode Mode = sycl::AccessMode::ReadWrite;
  bool IsNDRange = false;           // parallel_for with nd_range.
  std::string KernelName;           // parallel_for kernel type name.
};

/// Mangled constructor name for `sycl::range<Dim>`.
std::string rangeCtor(unsigned Dim);
/// Mangled constructor name for `sycl::id<Dim>`.
std::string idCtor(unsigned Dim);
/// Mangled constructor name for `sycl::buffer<Elem, Dim>`.
std::string bufferCtor(unsigned Dim, Type ElementType);
/// Mangled constructor name for `sycl::accessor<Elem, Dim, Mode>`.
std::string accessorCtor(unsigned Dim, Type ElementType,
                         sycl::AccessMode Mode);
/// Mangled constructor name for `sycl::local_accessor<Elem, Dim>`.
std::string localAccessorCtor(unsigned Dim, Type ElementType);
/// Mangled name of `sycl::handler::parallel_for<KernelName>` with a
/// range<Dim> (or nd_range<Dim> when \p IsNDRange).
std::string parallelFor(std::string_view KernelName, unsigned Dim,
                        bool IsNDRange);

/// Recovers the call information from a mangled runtime symbol name.
/// Returns Kind::Unknown for symbols not part of the ABI.
CallInfo parseCallee(MLIRContext *Context, std::string_view Name);

} // namespace abi
} // namespace smlir

#endif // SMLIR_DIALECT_RUNTIMEABI_H
