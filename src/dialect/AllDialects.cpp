//===- AllDialects.cpp - Bulk dialect registration --------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dialect/Arith.h"
#include "dialect/Builtin.h"
#include "dialect/GPU.h"
#include "dialect/MemRef.h"
#include "dialect/SCF.h"
#include "dialect/SYCL.h"
#include "ir/MLIRContext.h"

using namespace smlir;

void smlir::registerAllDialects(MLIRContext &Context) {
  registerBuiltinDialect(Context);
  arith::registerArithDialect(Context);
  math::registerMathDialect(Context);
  memref::registerMemRefDialect(Context);
  scf::registerSCFDialect(Context);
  affine::registerAffineDialect(Context);
  gpu::registerGPUDialect(Context);
  sycl::registerSYCLDialect(Context);
  llvmir::registerLLVMDialect(Context);
}
