//===- RuntimeABI.cpp - Simulated DPC++ runtime ABI --------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dialect/RuntimeABI.h"

#include <cctype>
#include <cstdlib>

using namespace smlir;
using namespace smlir::abi;

/// Itanium-style one-letter mangling of element types.
static char mangleElem(Type Ty) {
  if (Ty.isF32())
    return 'f';
  if (Ty.isF64())
    return 'd';
  if (Ty.isInteger(32))
    return 'i';
  if (Ty.isInteger(64))
    return 'l';
  return 'v';
}

static Type demangleElem(MLIRContext *Context, char C) {
  switch (C) {
  case 'f':
    return FloatType::get(Context, 32);
  case 'd':
    return FloatType::get(Context, 64);
  case 'i':
    return IntegerType::get(Context, 32);
  case 'l':
    return IntegerType::get(Context, 64);
  default:
    return Type();
  }
}

/// SYCL 2020 access_mode enumerator values (as they appear in mangled
/// DPC++ symbols).
static unsigned mangleMode(sycl::AccessMode Mode) {
  switch (Mode) {
  case sycl::AccessMode::Read:
    return 1024;
  case sycl::AccessMode::Write:
    return 1025;
  case sycl::AccessMode::ReadWrite:
    return 1026;
  }
  return 1026;
}

static std::optional<sycl::AccessMode> demangleMode(unsigned Value) {
  switch (Value) {
  case 1024:
    return sycl::AccessMode::Read;
  case 1025:
    return sycl::AccessMode::Write;
  case 1026:
    return sycl::AccessMode::ReadWrite;
  default:
    return std::nullopt;
  }
}

std::string abi::rangeCtor(unsigned Dim) {
  std::string Name = "_ZN4sycl3_V15rangeILi" + std::to_string(Dim) + "EEC2E";
  for (unsigned I = 0; I < Dim; ++I)
    Name += 'm';
  return Name;
}

std::string abi::idCtor(unsigned Dim) {
  std::string Name = "_ZN4sycl3_V12idILi" + std::to_string(Dim) + "EEC2E";
  for (unsigned I = 0; I < Dim; ++I)
    Name += 'm';
  return Name;
}

std::string abi::bufferCtor(unsigned Dim, Type ElementType) {
  return std::string("_ZN4sycl3_V16bufferI") + mangleElem(ElementType) +
         "Li" + std::to_string(Dim) + "EEC2EPvRKNS0_5rangeILi" +
         std::to_string(Dim) + "EEE";
}

std::string abi::accessorCtor(unsigned Dim, Type ElementType,
                              sycl::AccessMode Mode) {
  return std::string("_ZN4sycl3_V18accessorI") + mangleElem(ElementType) +
         "Li" + std::to_string(Dim) + "ELNS0_6access4modeE" +
         std::to_string(mangleMode(Mode)) + "EEC2ERNS0_6bufferI" +
         mangleElem(ElementType) + "Li" + std::to_string(Dim) +
         "EEERNS0_7handlerE";
}

std::string abi::localAccessorCtor(unsigned Dim, Type ElementType) {
  return std::string("_ZN4sycl3_V114local_accessorI") +
         mangleElem(ElementType) + "Li" + std::to_string(Dim) +
         "EEC2ERKNS0_5rangeILi" + std::to_string(Dim) + "EEERNS0_7handlerE";
}

std::string abi::parallelFor(std::string_view KernelName, unsigned Dim,
                             bool IsNDRange) {
  std::string Name = "_ZN4sycl3_V17handler12parallel_forIZ";
  Name += std::to_string(KernelName.size());
  Name += KernelName;
  Name += "EEv";
  Name += IsNDRange ? "NS0_8nd_rangeILi" : "NS0_5rangeILi";
  Name += std::to_string(Dim);
  Name += "EEE";
  return Name;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

/// Minimal cursor over a mangled name.
struct Cursor {
  std::string_view Text;

  bool consume(std::string_view Prefix) {
    if (!Text.starts_with(Prefix))
      return false;
    Text.remove_prefix(Prefix.size());
    return true;
  }

  std::optional<unsigned> number() {
    size_t Len = 0;
    while (Len < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Len])))
      ++Len;
    if (Len == 0)
      return std::nullopt;
    unsigned Value = std::strtoul(std::string(Text.substr(0, Len)).c_str(),
                                  nullptr, 10);
    Text.remove_prefix(Len);
    return Value;
  }

  std::optional<char> one() {
    if (Text.empty())
      return std::nullopt;
    char C = Text.front();
    Text.remove_prefix(1);
    return C;
  }
};

} // namespace

CallInfo abi::parseCallee(MLIRContext *Context, std::string_view Name) {
  CallInfo Info;
  Cursor C{Name};
  if (!C.consume("_ZN4sycl3_V1"))
    return Info;

  if (C.consume("5rangeILi")) {
    auto Dim = C.number();
    if (!Dim || !C.consume("EEC2E"))
      return Info;
    Info.CallKind = CallInfo::Kind::RangeCtor;
    Info.Dim = *Dim;
    return Info;
  }
  if (C.consume("2idILi")) {
    auto Dim = C.number();
    if (!Dim || !C.consume("EEC2E"))
      return Info;
    Info.CallKind = CallInfo::Kind::IDCtor;
    Info.Dim = *Dim;
    return Info;
  }
  if (C.consume("6bufferI")) {
    auto Elem = C.one();
    if (!Elem || !C.consume("Li"))
      return Info;
    auto Dim = C.number();
    if (!Dim)
      return Info;
    Info.ElementType = demangleElem(Context, *Elem);
    if (!Info.ElementType)
      return Info;
    Info.CallKind = CallInfo::Kind::BufferCtor;
    Info.Dim = *Dim;
    return Info;
  }
  if (C.consume("8accessorI")) {
    auto Elem = C.one();
    if (!Elem || !C.consume("Li"))
      return Info;
    auto Dim = C.number();
    if (!Dim || !C.consume("ELNS0_6access4modeE"))
      return Info;
    auto ModeValue = C.number();
    if (!ModeValue)
      return Info;
    auto Mode = demangleMode(*ModeValue);
    Info.ElementType = demangleElem(Context, *Elem);
    if (!Mode || !Info.ElementType)
      return Info;
    Info.CallKind = CallInfo::Kind::AccessorCtor;
    Info.Dim = *Dim;
    Info.Mode = *Mode;
    return Info;
  }
  if (C.consume("14local_accessorI")) {
    auto Elem = C.one();
    if (!Elem || !C.consume("Li"))
      return Info;
    auto Dim = C.number();
    if (!Dim)
      return Info;
    Info.ElementType = demangleElem(Context, *Elem);
    if (!Info.ElementType)
      return Info;
    Info.CallKind = CallInfo::Kind::LocalAccessorCtor;
    Info.Dim = *Dim;
    return Info;
  }
  if (C.consume("7handler12parallel_forIZ")) {
    auto NameLen = C.number();
    if (!NameLen || C.Text.size() < *NameLen)
      return Info;
    Info.KernelName = std::string(C.Text.substr(0, *NameLen));
    C.Text.remove_prefix(*NameLen);
    if (!C.consume("EEv"))
      return Info;
    if (C.consume("NS0_8nd_rangeILi"))
      Info.IsNDRange = true;
    else if (!C.consume("NS0_5rangeILi"))
      return Info;
    auto Dim = C.number();
    if (!Dim)
      return Info;
    Info.CallKind = CallInfo::Kind::ParallelFor;
    Info.Dim = *Dim;
    return Info;
  }
  return Info;
}
