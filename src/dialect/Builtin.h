//===- Builtin.h - Builtin and func dialects --------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The builtin dialect (`builtin.module`) and func dialect (`func.func`,
/// `func.return`, `func.call`), plus symbol-table lookup helpers. Modules
/// can nest: the joint host+device representation stores device kernels in
/// a nested module named `kernels` (paper Listing 9: `@kernels::@K`).
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_DIALECT_BUILTIN_H
#define SMLIR_DIALECT_BUILTIN_H

#include "ir/Builders.h"
#include "ir/OpDefinition.h"

namespace smlir {

//===----------------------------------------------------------------------===//
// ModuleOp
//===----------------------------------------------------------------------===//

/// A (possibly named) container of functions and nested modules.
class ModuleOp : public OpBase<ModuleOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "builtin.module"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    std::string_view Name = "");

  /// Creates a detached module (the usual top-level entry point).
  static ModuleOp create(MLIRContext *Context, std::string_view Name = "");

  Block *getBody() const {
    return &TheOp->getRegion(0).getOrCreateEntryBlock();
  }

  std::string getName() const {
    auto Attr = TheOp->getAttrOfType<StringAttr>("sym_name");
    return Attr ? Attr.getValue() : std::string();
  }

  /// Finds the operation defining symbol \p Name directly in this module.
  Operation *lookupSymbol(std::string_view Name) const;

  /// Resolves a (possibly nested) symbol reference such as
  /// `@kernels::@K` starting at this module.
  Operation *lookupSymbol(SymbolRefAttr Ref) const;

  static LogicalResult verifyOp(Operation *Op);
};

//===----------------------------------------------------------------------===//
// FuncOp
//===----------------------------------------------------------------------===//

/// A named function with a single-region body (empty for declarations).
class FuncOp : public OpBase<FuncOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "func.func"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    std::string_view Name, FunctionType Ty);

  std::string getName() const {
    return TheOp->getAttrOfType<StringAttr>("sym_name").getValue();
  }
  FunctionType getFunctionType() const {
    return TheOp->getAttrOfType<TypeAttr>("function_type")
        .getValue()
        .cast<FunctionType>();
  }
  void setFunctionType(FunctionType Ty) {
    TheOp->setAttr("function_type", TypeAttr::get(Ty));
  }

  bool isDeclaration() const { return TheOp->getRegion(0).empty(); }
  Region &getBody() const { return TheOp->getRegion(0); }

  /// Creates the entry block with arguments matching the signature.
  Block *addEntryBlock();

  Block *getEntryBlock() const { return &TheOp->getRegion(0).front(); }
  unsigned getNumArguments() const {
    return getFunctionType().getNumInputs();
  }
  Value getArgument(unsigned Index) const {
    return getEntryBlock()->getArgument(Index);
  }

  /// Erases argument \p Index from both the signature and the entry block
  /// (the block argument must be unused).
  void eraseArgument(unsigned Index);

  static LogicalResult verifyOp(Operation *Op);
};

//===----------------------------------------------------------------------===//
// ReturnOp
//===----------------------------------------------------------------------===//

/// Function terminator returning zero or more values.
class ReturnOp : public OpBase<ReturnOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "func.return"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    const std::vector<Value> &Operands = {});

  static LogicalResult verifyOp(Operation *Op);
};

//===----------------------------------------------------------------------===//
// CallOp
//===----------------------------------------------------------------------===//

/// Direct call to a function declared in the nearest symbol table.
class CallOp : public OpBase<CallOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "func.call"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    std::string_view Callee,
                    const std::vector<Value> &Operands,
                    const std::vector<Type> &Results);

  std::string getCallee() const {
    return TheOp->getAttrOfType<SymbolRefAttr>("callee").getLeafReference();
  }

  /// Resolves the callee function within \p Scope (a module).
  FuncOp resolveCallee(ModuleOp Scope) const;

  static LogicalResult verifyOp(Operation *Op);
};

//===----------------------------------------------------------------------===//
// UnrealizedConversionCastOp
//===----------------------------------------------------------------------===//

/// `builtin.unrealized_conversion_cast %v : T -> U` — a value-identity
/// bridge between two type systems during dialect conversion. The default
/// materialization of the conversion framework creates these; a completed
/// full conversion must not leave any behind.
class UnrealizedConversionCastOp : public OpBase<UnrealizedConversionCastOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() {
    return "builtin.unrealized_conversion_cast";
  }

  static void build(OpBuilder &Builder, OperationState &State, Value Input,
                    Type ResultTy) {
    State.addOperand(Input);
    State.addType(ResultTy);
  }

  Value getInput() const { return TheOp->getOperand(0); }

  static LogicalResult verifyOp(Operation *Op);
};

/// Registers the builtin and func dialects.
void registerBuiltinDialect(MLIRContext &Context);

} // namespace smlir

#endif // SMLIR_DIALECT_BUILTIN_H
