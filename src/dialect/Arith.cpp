//===- Arith.cpp - Arithmetic and math dialects -----------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dialect/Arith.h"

#include <cmath>

using namespace smlir;
using namespace smlir::arith;

//===----------------------------------------------------------------------===//
// Constant helpers
//===----------------------------------------------------------------------===//

std::optional<int64_t> smlir::getConstantIntValue(Value Val) {
  Operation *Def = Val.getDefiningOp();
  if (!Def || !Def->hasTrait(OpTrait::ConstantLike))
    return std::nullopt;
  if (auto Attr = Def->getAttrOfType<IntegerAttr>("value"))
    return Attr.getValue();
  return std::nullopt;
}

std::optional<double> smlir::getConstantFloatValue(Value Val) {
  Operation *Def = Val.getDefiningOp();
  if (!Def || !Def->hasTrait(OpTrait::ConstantLike))
    return std::nullopt;
  if (auto Attr = Def->getAttrOfType<FloatAttr>("value"))
    return Attr.getValue();
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// ConstantOp
//===----------------------------------------------------------------------===//

void ConstantOp::build(OpBuilder &Builder, OperationState &State,
                       Attribute Value) {
  State.addAttribute("value", Value);
  if (auto IntAttr = Value.dyn_cast<IntegerAttr>())
    State.addType(IntAttr.getType());
  else if (auto FloatAttr_ = Value.dyn_cast<FloatAttr>())
    State.addType(FloatAttr_.getType());
  else
    assert(false && "unsupported constant attribute kind");
}

LogicalResult ConstantOp::verifyOp(Operation *Op) {
  Attribute Value = Op->getAttr("value");
  if (!Value || Op->getNumResults() != 1)
    return failure();
  if (auto IntAttr = Value.dyn_cast<IntegerAttr>())
    return success(IntAttr.getType() == Op->getResultType(0));
  if (auto FloatAttr_ = Value.dyn_cast<FloatAttr>())
    return success(FloatAttr_.getType() == Op->getResultType(0));
  return failure();
}

Value arith::createIndexConstant(OpBuilder &Builder, Location Loc,
                                 int64_t Value) {
  return Builder
      .create<ConstantOp>(Loc, Builder.getIndexAttr(Value))
      .getOperation()
      ->getResult(0);
}

Value arith::createIntConstant(OpBuilder &Builder, Location Loc, Type Ty,
                               int64_t Value) {
  return Builder.create<ConstantOp>(Loc, IntegerAttr::get(Ty, Value))
      .getOperation()
      ->getResult(0);
}

Value arith::createFloatConstant(OpBuilder &Builder, Location Loc, Type Ty,
                                 double Value) {
  return Builder.create<ConstantOp>(Loc, FloatAttr::get(Ty, Value))
      .getOperation()
      ->getResult(0);
}

Value arith::createBoolConstant(OpBuilder &Builder, Location Loc,
                                bool Value) {
  return Builder.create<ConstantOp>(Loc, Builder.getBoolAttr(Value))
      .getOperation()
      ->getResult(0);
}

//===----------------------------------------------------------------------===//
// Folding helpers
//===----------------------------------------------------------------------===//

namespace {

using IntFn = int64_t (*)(int64_t, int64_t);
using FloatFn = double (*)(double, double);

/// Folds an integer binary op: constant-folds when both operands are
/// constants; applies left/right identities when given.
OpFoldResult foldIntBinary(Operation *Op, const std::vector<Attribute> &Ops,
                           IntFn Fn, std::optional<int64_t> RightIdentity,
                           std::optional<int64_t> RightZero = std::nullopt) {
  auto Lhs = Ops[0] ? Ops[0].dyn_cast<IntegerAttr>() : IntegerAttr();
  auto Rhs = Ops[1] ? Ops[1].dyn_cast<IntegerAttr>() : IntegerAttr();
  if (Lhs && Rhs)
    return Attribute(
        IntegerAttr::get(Lhs.getType(), Fn(Lhs.getValue(), Rhs.getValue())));
  if (Rhs && RightIdentity && Rhs.getValue() == *RightIdentity)
    return Op->getOperand(0);
  if (Rhs && RightZero && Rhs.getValue() == *RightZero)
    return Attribute(IntegerAttr::get(Rhs.getType(), *RightZero));
  return OpFoldResult();
}

OpFoldResult foldFloatBinary(Operation *Op, const std::vector<Attribute> &Ops,
                             FloatFn Fn) {
  auto Lhs = Ops[0] ? Ops[0].dyn_cast<FloatAttr>() : FloatAttr();
  auto Rhs = Ops[1] ? Ops[1].dyn_cast<FloatAttr>() : FloatAttr();
  if (Lhs && Rhs)
    return Attribute(
        FloatAttr::get(Lhs.getType(), Fn(Lhs.getValue(), Rhs.getValue())));
  return OpFoldResult();
}

OpFoldResult foldAddI(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldIntBinary(
      Op, Ops, [](int64_t A, int64_t B) { return A + B; }, 0);
}
OpFoldResult foldSubI(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldIntBinary(
      Op, Ops, [](int64_t A, int64_t B) { return A - B; }, 0);
}
OpFoldResult foldMulI(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldIntBinary(
      Op, Ops, [](int64_t A, int64_t B) { return A * B; }, 1, 0);
}
OpFoldResult foldDivSI(Operation *Op, const std::vector<Attribute> &Ops) {
  auto Rhs = Ops[1] ? Ops[1].dyn_cast<IntegerAttr>() : IntegerAttr();
  if (Rhs && Rhs.getValue() == 0)
    return OpFoldResult(); // Division by zero: do not fold.
  return foldIntBinary(
      Op, Ops, [](int64_t A, int64_t B) { return A / B; }, 1);
}
OpFoldResult foldRemSI(Operation *Op, const std::vector<Attribute> &Ops) {
  auto Rhs = Ops[1] ? Ops[1].dyn_cast<IntegerAttr>() : IntegerAttr();
  if (Rhs && Rhs.getValue() == 0)
    return OpFoldResult();
  return foldIntBinary(
      Op, Ops, [](int64_t A, int64_t B) { return A % B; }, std::nullopt);
}
OpFoldResult foldAndI(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldIntBinary(
      Op, Ops, [](int64_t A, int64_t B) { return A & B; }, -1, 0);
}
OpFoldResult foldOrI(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldIntBinary(
      Op, Ops, [](int64_t A, int64_t B) { return A | B; }, 0);
}
OpFoldResult foldXOrI(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldIntBinary(
      Op, Ops, [](int64_t A, int64_t B) { return A ^ B; }, 0);
}
OpFoldResult foldMinSI(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldIntBinary(
      Op, Ops, [](int64_t A, int64_t B) { return A < B ? A : B; },
      std::nullopt);
}
OpFoldResult foldMaxSI(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldIntBinary(
      Op, Ops, [](int64_t A, int64_t B) { return A > B ? A : B; },
      std::nullopt);
}
OpFoldResult foldAddF(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldFloatBinary(Op, Ops,
                         [](double A, double B) { return A + B; });
}
OpFoldResult foldSubF(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldFloatBinary(Op, Ops,
                         [](double A, double B) { return A - B; });
}
OpFoldResult foldMulF(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldFloatBinary(Op, Ops,
                         [](double A, double B) { return A * B; });
}
OpFoldResult foldDivF(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldFloatBinary(Op, Ops,
                         [](double A, double B) { return A / B; });
}
OpFoldResult foldMinF(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldFloatBinary(
      Op, Ops, [](double A, double B) { return A < B ? A : B; });
}
OpFoldResult foldMaxF(Operation *Op, const std::vector<Attribute> &Ops) {
  return foldFloatBinary(
      Op, Ops, [](double A, double B) { return A > B ? A : B; });
}
OpFoldResult foldNegF(Operation *Op, const std::vector<Attribute> &Ops) {
  if (auto Operand = Ops[0] ? Ops[0].dyn_cast<FloatAttr>() : FloatAttr())
    return Attribute(FloatAttr::get(Operand.getType(), -Operand.getValue()));
  return OpFoldResult();
}

OpFoldResult foldCmpI(Operation *Op, const std::vector<Attribute> &Ops) {
  auto Lhs = Ops[0] ? Ops[0].dyn_cast<IntegerAttr>() : IntegerAttr();
  auto Rhs = Ops[1] ? Ops[1].dyn_cast<IntegerAttr>() : IntegerAttr();
  if (!Lhs || !Rhs)
    return OpFoldResult();
  auto Pred = parseCmpIPredicate(
      Op->getAttrOfType<StringAttr>("predicate").getValue());
  if (!Pred)
    return OpFoldResult();
  int64_t A = Lhs.getValue(), B = Rhs.getValue();
  bool Result = false;
  switch (*Pred) {
  case CmpIPredicate::eq:
    Result = A == B;
    break;
  case CmpIPredicate::ne:
    Result = A != B;
    break;
  case CmpIPredicate::slt:
    Result = A < B;
    break;
  case CmpIPredicate::sle:
    Result = A <= B;
    break;
  case CmpIPredicate::sgt:
    Result = A > B;
    break;
  case CmpIPredicate::sge:
    Result = A >= B;
    break;
  }
  return Attribute(getBoolAttr(Op->getContext(), Result));
}

OpFoldResult foldCmpF(Operation *Op, const std::vector<Attribute> &Ops) {
  auto Lhs = Ops[0] ? Ops[0].dyn_cast<FloatAttr>() : FloatAttr();
  auto Rhs = Ops[1] ? Ops[1].dyn_cast<FloatAttr>() : FloatAttr();
  if (!Lhs || !Rhs)
    return OpFoldResult();
  auto Pred = parseCmpFPredicate(
      Op->getAttrOfType<StringAttr>("predicate").getValue());
  if (!Pred)
    return OpFoldResult();
  double A = Lhs.getValue(), B = Rhs.getValue();
  bool Result = false;
  switch (*Pred) {
  case CmpFPredicate::oeq:
    Result = A == B;
    break;
  case CmpFPredicate::one:
    Result = A != B;
    break;
  case CmpFPredicate::olt:
    Result = A < B;
    break;
  case CmpFPredicate::ole:
    Result = A <= B;
    break;
  case CmpFPredicate::ogt:
    Result = A > B;
    break;
  case CmpFPredicate::oge:
    Result = A >= B;
    break;
  }
  return Attribute(getBoolAttr(Op->getContext(), Result));
}

OpFoldResult foldSelect(Operation *Op, const std::vector<Attribute> &Ops) {
  if (Op->getOperand(1) == Op->getOperand(2))
    return Op->getOperand(1);
  auto Cond = Ops[0] ? Ops[0].dyn_cast<IntegerAttr>() : IntegerAttr();
  if (!Cond)
    return OpFoldResult();
  return Cond.getValue() ? Op->getOperand(1) : Op->getOperand(2);
}

OpFoldResult foldIndexCast(Operation *Op, const std::vector<Attribute> &Ops) {
  if (auto Operand = Ops[0] ? Ops[0].dyn_cast<IntegerAttr>() : IntegerAttr())
    return Attribute(
        IntegerAttr::get(Op->getResultType(0), Operand.getValue()));
  // index_cast(index_cast(x)) with matching types folds to x.
  if (Operation *Def = Op->getOperand(0).getDefiningOp())
    if (auto Inner = IndexCastOp::dyn_cast(Def))
      if (Inner.getOperand().getType() == Op->getResultType(0))
        return Inner.getOperand();
  return OpFoldResult();
}

OpFoldResult foldExtSI(Operation *Op, const std::vector<Attribute> &Ops) {
  if (auto Operand = Ops[0] ? Ops[0].dyn_cast<IntegerAttr>() : IntegerAttr())
    return Attribute(
        IntegerAttr::get(Op->getResultType(0), Operand.getValue()));
  return OpFoldResult();
}

OpFoldResult foldTruncI(Operation *Op, const std::vector<Attribute> &Ops) {
  auto Operand = Ops[0] ? Ops[0].dyn_cast<IntegerAttr>() : IntegerAttr();
  if (!Operand)
    return OpFoldResult();
  auto ResultTy = Op->getResultType(0).cast<IntegerType>();
  uint64_t Mask = ResultTy.getWidth() >= 64
                      ? ~0ull
                      : ((1ull << ResultTy.getWidth()) - 1);
  return Attribute(IntegerAttr::get(
      ResultTy, static_cast<int64_t>(
                    static_cast<uint64_t>(Operand.getValue()) & Mask)));
}

OpFoldResult foldSIToFP(Operation *Op, const std::vector<Attribute> &Ops) {
  if (auto Operand = Ops[0] ? Ops[0].dyn_cast<IntegerAttr>() : IntegerAttr())
    return Attribute(FloatAttr::get(Op->getResultType(0),
                                    static_cast<double>(Operand.getValue())));
  return OpFoldResult();
}

OpFoldResult foldFPToSI(Operation *Op, const std::vector<Attribute> &Ops) {
  if (auto Operand = Ops[0] ? Ops[0].dyn_cast<FloatAttr>() : FloatAttr())
    return Attribute(IntegerAttr::get(
        Op->getResultType(0), static_cast<int64_t>(Operand.getValue())));
  return OpFoldResult();
}

/// Verifies a binary op: two same-typed operands, same-typed result.
LogicalResult verifySameTypeBinary(Operation *Op) {
  if (Op->getNumOperands() != 2 || Op->getNumResults() != 1)
    return failure();
  Type Ty = Op->getOperand(0).getType();
  return success(Op->getOperand(1).getType() == Ty &&
                 Op->getResultType(0) == Ty);
}

} // namespace

//===----------------------------------------------------------------------===//
// CmpIOp / CmpFOp / SelectOp
//===----------------------------------------------------------------------===//

std::string_view arith::stringifyCmpIPredicate(CmpIPredicate Pred) {
  switch (Pred) {
  case CmpIPredicate::eq:
    return "eq";
  case CmpIPredicate::ne:
    return "ne";
  case CmpIPredicate::slt:
    return "slt";
  case CmpIPredicate::sle:
    return "sle";
  case CmpIPredicate::sgt:
    return "sgt";
  case CmpIPredicate::sge:
    return "sge";
  }
  return "";
}

std::optional<CmpIPredicate>
arith::parseCmpIPredicate(std::string_view Str) {
  if (Str == "eq")
    return CmpIPredicate::eq;
  if (Str == "ne")
    return CmpIPredicate::ne;
  if (Str == "slt")
    return CmpIPredicate::slt;
  if (Str == "sle")
    return CmpIPredicate::sle;
  if (Str == "sgt")
    return CmpIPredicate::sgt;
  if (Str == "sge")
    return CmpIPredicate::sge;
  return std::nullopt;
}

std::string_view arith::stringifyCmpFPredicate(CmpFPredicate Pred) {
  switch (Pred) {
  case CmpFPredicate::oeq:
    return "oeq";
  case CmpFPredicate::one:
    return "one";
  case CmpFPredicate::olt:
    return "olt";
  case CmpFPredicate::ole:
    return "ole";
  case CmpFPredicate::ogt:
    return "ogt";
  case CmpFPredicate::oge:
    return "oge";
  }
  return "";
}

std::optional<CmpFPredicate>
arith::parseCmpFPredicate(std::string_view Str) {
  if (Str == "oeq")
    return CmpFPredicate::oeq;
  if (Str == "one")
    return CmpFPredicate::one;
  if (Str == "olt")
    return CmpFPredicate::olt;
  if (Str == "ole")
    return CmpFPredicate::ole;
  if (Str == "ogt")
    return CmpFPredicate::ogt;
  if (Str == "oge")
    return CmpFPredicate::oge;
  return std::nullopt;
}

void CmpIOp::build(OpBuilder &Builder, OperationState &State,
                   CmpIPredicate Pred, Value Lhs, Value Rhs) {
  State.addAttribute("predicate",
                     StringAttr::get(Builder.getContext(),
                                     stringifyCmpIPredicate(Pred)));
  State.addOperands({Lhs, Rhs});
  State.addType(Builder.getI1Type());
}

CmpIPredicate CmpIOp::getPredicate() const {
  return *parseCmpIPredicate(
      TheOp->getAttrOfType<StringAttr>("predicate").getValue());
}

LogicalResult CmpIOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() != 2 || Op->getNumResults() != 1)
    return failure();
  auto Pred = Op->getAttrOfType<StringAttr>("predicate");
  if (!Pred || !parseCmpIPredicate(Pred.getValue()))
    return failure();
  return success(Op->getOperand(0).getType() ==
                     Op->getOperand(1).getType() &&
                 Op->getResultType(0).isInteger(1) &&
                 Op->getOperand(0).getType().isIntOrIndex());
}

void CmpFOp::build(OpBuilder &Builder, OperationState &State,
                   CmpFPredicate Pred, Value Lhs, Value Rhs) {
  State.addAttribute("predicate",
                     StringAttr::get(Builder.getContext(),
                                     stringifyCmpFPredicate(Pred)));
  State.addOperands({Lhs, Rhs});
  State.addType(Builder.getI1Type());
}

CmpFPredicate CmpFOp::getPredicate() const {
  return *parseCmpFPredicate(
      TheOp->getAttrOfType<StringAttr>("predicate").getValue());
}

LogicalResult CmpFOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() != 2 || Op->getNumResults() != 1)
    return failure();
  auto Pred = Op->getAttrOfType<StringAttr>("predicate");
  if (!Pred || !parseCmpFPredicate(Pred.getValue()))
    return failure();
  return success(Op->getOperand(0).getType() ==
                     Op->getOperand(1).getType() &&
                 Op->getResultType(0).isInteger(1) &&
                 Op->getOperand(0).getType().isFloat());
}

void SelectOp::build(OpBuilder &Builder, OperationState &State,
                     Value Condition, Value TrueValue, Value FalseValue) {
  State.addOperands({Condition, TrueValue, FalseValue});
  State.addType(TrueValue.getType());
}

LogicalResult SelectOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() != 3 || Op->getNumResults() != 1)
    return failure();
  return success(Op->getOperand(0).getType().isInteger(1) &&
                 Op->getOperand(1).getType() ==
                     Op->getOperand(2).getType() &&
                 Op->getResultType(0) == Op->getOperand(1).getType());
}

//===----------------------------------------------------------------------===//
// Registration
//===----------------------------------------------------------------------===//

void arith::registerArithDialect(MLIRContext &Context) {
  auto *ArithDialect =
      Context.registerDialect(std::make_unique<Dialect>("arith", &Context));
  uint64_t Pure = traits(OpTrait::Pure);

  registerOp<ConstantOp>(Context, ArithDialect,
                         {traits(OpTrait::Pure, OpTrait::ConstantLike),
                          &ConstantOp::verifyOp});

  registerOp<AddIOp>(Context, ArithDialect,
                     {Pure, &verifySameTypeBinary, &foldAddI});
  registerOp<SubIOp>(Context, ArithDialect,
                     {Pure, &verifySameTypeBinary, &foldSubI});
  registerOp<MulIOp>(Context, ArithDialect,
                     {Pure, &verifySameTypeBinary, &foldMulI});
  registerOp<DivSIOp>(Context, ArithDialect,
                      {Pure, &verifySameTypeBinary, &foldDivSI});
  registerOp<RemSIOp>(Context, ArithDialect,
                      {Pure, &verifySameTypeBinary, &foldRemSI});
  registerOp<AndIOp>(Context, ArithDialect,
                     {Pure, &verifySameTypeBinary, &foldAndI});
  registerOp<OrIOp>(Context, ArithDialect,
                    {Pure, &verifySameTypeBinary, &foldOrI});
  registerOp<XOrIOp>(Context, ArithDialect,
                     {Pure, &verifySameTypeBinary, &foldXOrI});
  registerOp<MinSIOp>(Context, ArithDialect,
                      {Pure, &verifySameTypeBinary, &foldMinSI});
  registerOp<MaxSIOp>(Context, ArithDialect,
                      {Pure, &verifySameTypeBinary, &foldMaxSI});
  registerOp<AddFOp>(Context, ArithDialect,
                     {Pure, &verifySameTypeBinary, &foldAddF});
  registerOp<SubFOp>(Context, ArithDialect,
                     {Pure, &verifySameTypeBinary, &foldSubF});
  registerOp<MulFOp>(Context, ArithDialect,
                     {Pure, &verifySameTypeBinary, &foldMulF});
  registerOp<DivFOp>(Context, ArithDialect,
                     {Pure, &verifySameTypeBinary, &foldDivF});
  registerOp<MinFOp>(Context, ArithDialect,
                     {Pure, &verifySameTypeBinary, &foldMinF});
  registerOp<MaxFOp>(Context, ArithDialect,
                     {Pure, &verifySameTypeBinary, &foldMaxF});
  registerOp<NegFOp>(Context, ArithDialect, {Pure, nullptr, &foldNegF});

  registerOp<IndexCastOp>(Context, ArithDialect,
                          {Pure, nullptr, &foldIndexCast});
  registerOp<SIToFPOp>(Context, ArithDialect, {Pure, nullptr, &foldSIToFP});
  registerOp<FPToSIOp>(Context, ArithDialect, {Pure, nullptr, &foldFPToSI});
  registerOp<ExtSIOp>(Context, ArithDialect, {Pure, nullptr, &foldExtSI});
  registerOp<TruncIOp>(Context, ArithDialect, {Pure, nullptr, &foldTruncI});

  registerOp<CmpIOp>(Context, ArithDialect,
                     {Pure, &CmpIOp::verifyOp, &foldCmpI});
  registerOp<CmpFOp>(Context, ArithDialect,
                     {Pure, &CmpFOp::verifyOp, &foldCmpF});
  registerOp<SelectOp>(Context, ArithDialect,
                       {Pure, &SelectOp::verifyOp, &foldSelect});
}

void math::registerMathDialect(MLIRContext &Context) {
  auto *MathDialect =
      Context.registerDialect(std::make_unique<Dialect>("math", &Context));
  uint64_t Pure = traits(OpTrait::Pure);
  registerOp<math::SqrtOp>(Context, MathDialect, {Pure});
  registerOp<math::ExpOp>(Context, MathDialect, {Pure});
  registerOp<math::FAbsOp>(Context, MathDialect, {Pure});
}
