//===- MemRef.h - MemRef dialect --------------------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memref dialect: stack allocation and memory access on shaped memory
/// references. The memory space of a memref models the SYCL memory
/// hierarchy (global / local / private, paper §II-A).
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_DIALECT_MEMREF_H
#define SMLIR_DIALECT_MEMREF_H

#include "ir/Builders.h"
#include "ir/OpDefinition.h"

namespace smlir {
namespace memref {

/// Allocates private (or, in kernels, work-group local) memory with a
/// static shape.
class AllocaOp : public OpBase<AllocaOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "memref.alloca"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    MemRefType Ty) {
    State.addType(Ty);
  }

  MemRefType getType() const {
    return TheOp->getResultType(0).cast<MemRefType>();
  }

  static LogicalResult verifyOp(Operation *Op);
  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// Loads an element: `memref.load %ref[%i, %j]`.
class LoadOp : public OpBase<LoadOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "memref.load"; }

  static void build(OpBuilder &Builder, OperationState &State, Value MemRef,
                    const std::vector<Value> &Indices) {
    State.addOperand(MemRef);
    State.addOperands(Indices);
    State.addType(MemRef.getType().cast<MemRefType>().getElementType());
  }

  Value getMemRef() const { return TheOp->getOperand(0); }
  std::vector<Value> getIndices() const {
    std::vector<Value> Operands = TheOp->getOperands();
    return std::vector<Value>(Operands.begin() + 1, Operands.end());
  }

  static LogicalResult verifyOp(Operation *Op);
  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// Stores an element: `memref.store %v, %ref[%i, %j]`.
class StoreOp : public OpBase<StoreOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "memref.store"; }

  static void build(OpBuilder &Builder, OperationState &State, Value ToStore,
                    Value MemRef, const std::vector<Value> &Indices) {
    State.addOperand(ToStore);
    State.addOperand(MemRef);
    State.addOperands(Indices);
  }

  Value getValueToStore() const { return TheOp->getOperand(0); }
  Value getMemRef() const { return TheOp->getOperand(1); }
  std::vector<Value> getIndices() const {
    std::vector<Value> Operands = TheOp->getOperands();
    return std::vector<Value>(Operands.begin() + 2, Operands.end());
  }

  static LogicalResult verifyOp(Operation *Op);
  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// `memref.dim %ref, %d` — the runtime extent of dimension %d. For static
/// dimensions this is the shape constant; for dynamic dimensions the
/// extent travels with the runtime memref descriptor (for lowered SYCL
/// accessors: the accessor range).
class DimOp : public OpBase<DimOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "memref.dim"; }

  static void build(OpBuilder &Builder, OperationState &State, Value MemRef,
                    Value Dim) {
    State.addOperands({MemRef, Dim});
    State.addType(Builder.getIndexType());
  }

  Value getMemRef() const { return TheOp->getOperand(0); }
  Value getDim() const { return TheOp->getOperand(1); }

  static LogicalResult verifyOp(Operation *Op);
};

/// `memref.subview %ref[%i, %j]` — a rank-1 dynamic view positioned at the
/// (row-major) element %ref[%i, %j], the lowered form of
/// `sycl.accessor.subscript` / `get_pointer`. The view shares the source's
/// memory; subsequent loads/stores index relative to the view origin.
class SubViewOp : public OpBase<SubViewOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "memref.subview"; }

  static void build(OpBuilder &Builder, OperationState &State, Value MemRef,
                    const std::vector<Value> &Indices);

  Value getMemRef() const { return TheOp->getOperand(0); }
  std::vector<Value> getIndices() const {
    std::vector<Value> Operands = TheOp->getOperands();
    return std::vector<Value>(Operands.begin() + 1, Operands.end());
  }

  static LogicalResult verifyOp(Operation *Op);
};

/// `memref.offset %ref, %d -> index` — the runtime base offset of a view
/// in dimension %d, the lowered form of `sycl.accessor.get_offset`.
/// Lowered ranged accessors are rebased data views; the per-dimension
/// offset they were rebased by travels with the runtime memref
/// descriptor (zero for whole-buffer views and plain allocations).
class OffsetOp : public OpBase<OffsetOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "memref.offset"; }

  static void build(OpBuilder &Builder, OperationState &State, Value MemRef,
                    Value Dim) {
    State.addOperands({MemRef, Dim});
    State.addType(Builder.getIndexType());
  }

  Value getMemRef() const { return TheOp->getOperand(0); }
  Value getDim() const { return TheOp->getOperand(1); }

  static LogicalResult verifyOp(Operation *Op);
};

/// `memref.disjoint %a, %b -> i1` — runtime check that two memrefs cover
/// disjoint memory, the lowered form of `sycl.accessors.disjoint` (LICM
/// versioning conditions survive lowering as this op).
class DisjointOp : public OpBase<DisjointOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() {
    return "memref.disjoint";
  }

  static void build(OpBuilder &Builder, OperationState &State, Value A,
                    Value B) {
    State.addOperands({A, B});
    State.addType(Builder.getI1Type());
  }

  static LogicalResult verifyOp(Operation *Op);
  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// Registers the memref dialect.
void registerMemRefDialect(MLIRContext &Context);

} // namespace memref
} // namespace smlir

#endif // SMLIR_DIALECT_MEMREF_H
