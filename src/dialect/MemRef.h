//===- MemRef.h - MemRef dialect --------------------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memref dialect: stack allocation and memory access on shaped memory
/// references. The memory space of a memref models the SYCL memory
/// hierarchy (global / local / private, paper §II-A).
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_DIALECT_MEMREF_H
#define SMLIR_DIALECT_MEMREF_H

#include "ir/Builders.h"
#include "ir/OpDefinition.h"

namespace smlir {
namespace memref {

/// Allocates private (or, in kernels, work-group local) memory with a
/// static shape.
class AllocaOp : public OpBase<AllocaOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "memref.alloca"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    MemRefType Ty) {
    State.addType(Ty);
  }

  MemRefType getType() const {
    return TheOp->getResultType(0).cast<MemRefType>();
  }

  static LogicalResult verifyOp(Operation *Op);
  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// Loads an element: `memref.load %ref[%i, %j]`.
class LoadOp : public OpBase<LoadOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "memref.load"; }

  static void build(OpBuilder &Builder, OperationState &State, Value MemRef,
                    const std::vector<Value> &Indices) {
    State.addOperand(MemRef);
    State.addOperands(Indices);
    State.addType(MemRef.getType().cast<MemRefType>().getElementType());
  }

  Value getMemRef() const { return TheOp->getOperand(0); }
  std::vector<Value> getIndices() const {
    std::vector<Value> Operands = TheOp->getOperands();
    return std::vector<Value>(Operands.begin() + 1, Operands.end());
  }

  static LogicalResult verifyOp(Operation *Op);
  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// Stores an element: `memref.store %v, %ref[%i, %j]`.
class StoreOp : public OpBase<StoreOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "memref.store"; }

  static void build(OpBuilder &Builder, OperationState &State, Value ToStore,
                    Value MemRef, const std::vector<Value> &Indices) {
    State.addOperand(ToStore);
    State.addOperand(MemRef);
    State.addOperands(Indices);
  }

  Value getValueToStore() const { return TheOp->getOperand(0); }
  Value getMemRef() const { return TheOp->getOperand(1); }
  std::vector<Value> getIndices() const {
    std::vector<Value> Operands = TheOp->getOperands();
    return std::vector<Value>(Operands.begin() + 2, Operands.end());
  }

  static LogicalResult verifyOp(Operation *Op);
  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// Registers the memref dialect.
void registerMemRefDialect(MLIRContext &Context);

} // namespace memref
} // namespace smlir

#endif // SMLIR_DIALECT_MEMREF_H
