//===- MemRef.cpp - MemRef dialect ------------------------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dialect/MemRef.h"

using namespace smlir;
using namespace smlir::memref;

LogicalResult AllocaOp::verifyOp(Operation *Op) {
  if (Op->getNumResults() != 1 || Op->getNumOperands() != 0)
    return failure();
  auto Ty = Op->getResultType(0).dyn_cast<MemRefType>();
  return success(Ty && Ty.hasStaticShape());
}

void AllocaOp::getEffects(Operation *Op,
                          std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Allocate, Op->getResult(0)});
}

LogicalResult LoadOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() < 1 || Op->getNumResults() != 1)
    return failure();
  auto Ty = Op->getOperand(0).getType().dyn_cast<MemRefType>();
  if (!Ty)
    return failure();
  if (Op->getNumOperands() - 1 != Ty.getRank())
    return failure();
  for (unsigned I = 1, E = Op->getNumOperands(); I != E; ++I)
    if (!Op->getOperand(I).getType().isIntOrIndex())
      return failure();
  return success(Op->getResultType(0) == Ty.getElementType());
}

void LoadOp::getEffects(Operation *Op, std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Read, Op->getOperand(0)});
}

LogicalResult StoreOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() < 2 || Op->getNumResults() != 0)
    return failure();
  auto Ty = Op->getOperand(1).getType().dyn_cast<MemRefType>();
  if (!Ty)
    return failure();
  if (Op->getNumOperands() - 2 != Ty.getRank())
    return failure();
  return success(Op->getOperand(0).getType() == Ty.getElementType());
}

void StoreOp::getEffects(Operation *Op, std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Write, Op->getOperand(1)});
}

LogicalResult DimOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() != 2 || Op->getNumResults() != 1)
    return failure();
  if (!Op->getOperand(0).getType().isa<MemRefType>())
    return failure();
  if (!Op->getOperand(1).getType().isIntOrIndex())
    return failure();
  return success(Op->getResultType(0).isIndex());
}

void SubViewOp::build(OpBuilder &Builder, OperationState &State,
                      Value MemRef, const std::vector<Value> &Indices) {
  State.addOperand(MemRef);
  State.addOperands(Indices);
  auto SrcTy = MemRef.getType().cast<MemRefType>();
  State.addType(MemRefType::get(Builder.getContext(),
                                {MemRefType::kDynamic},
                                SrcTy.getElementType(),
                                SrcTy.getMemorySpace()));
}

LogicalResult SubViewOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() < 1 || Op->getNumResults() != 1)
    return failure();
  auto SrcTy = Op->getOperand(0).getType().dyn_cast<MemRefType>();
  auto ResultTy = Op->getResultType(0).dyn_cast<MemRefType>();
  if (!SrcTy || !ResultTy)
    return failure();
  if (Op->getNumOperands() - 1 != SrcTy.getRank())
    return failure();
  for (unsigned I = 1, E = Op->getNumOperands(); I != E; ++I)
    if (!Op->getOperand(I).getType().isIntOrIndex())
      return failure();
  return success(ResultTy.getRank() == 1 &&
                 ResultTy.getElementType() == SrcTy.getElementType() &&
                 ResultTy.getMemorySpace() == SrcTy.getMemorySpace());
}

LogicalResult OffsetOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() != 2 || Op->getNumResults() != 1)
    return failure();
  if (!Op->getOperand(0).getType().isa<MemRefType>())
    return failure();
  if (!Op->getOperand(1).getType().isIntOrIndex())
    return failure();
  return success(Op->getResultType(0).isIndex());
}

LogicalResult DisjointOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() != 2 || Op->getNumResults() != 1)
    return failure();
  if (!Op->getOperand(0).getType().isa<MemRefType>() ||
      !Op->getOperand(1).getType().isa<MemRefType>())
    return failure();
  return success(Op->getResultType(0).isInteger(1));
}

void DisjointOp::getEffects(Operation *Op,
                            std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Read, Op->getOperand(0)});
  Effects.push_back({EffectKind::Read, Op->getOperand(1)});
}

void memref::registerMemRefDialect(MLIRContext &Context) {
  auto *MemRefDialect =
      Context.registerDialect(std::make_unique<Dialect>("memref", &Context));
  registerOp<AllocaOp>(Context, MemRefDialect,
                       {0, &AllocaOp::verifyOp, nullptr,
                        &AllocaOp::getEffects});
  registerOp<LoadOp>(Context, MemRefDialect,
                     {0, &LoadOp::verifyOp, nullptr, &LoadOp::getEffects});
  registerOp<StoreOp>(Context, MemRefDialect,
                      {0, &StoreOp::verifyOp, nullptr, &StoreOp::getEffects});
  // Shape/address queries are pure: CSE/LICM treat them like arithmetic.
  registerOp<DimOp>(Context, MemRefDialect,
                    {traits(OpTrait::Pure), &DimOp::verifyOp});
  registerOp<SubViewOp>(Context, MemRefDialect,
                        {traits(OpTrait::Pure), &SubViewOp::verifyOp});
  registerOp<OffsetOp>(Context, MemRefDialect,
                       {traits(OpTrait::Pure), &OffsetOp::verifyOp});
  registerOp<DisjointOp>(Context, MemRefDialect,
                         {0, &DisjointOp::verifyOp, nullptr,
                          &DisjointOp::getEffects});
}
