//===- MemRef.cpp - MemRef dialect ------------------------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dialect/MemRef.h"

using namespace smlir;
using namespace smlir::memref;

LogicalResult AllocaOp::verifyOp(Operation *Op) {
  if (Op->getNumResults() != 1 || Op->getNumOperands() != 0)
    return failure();
  auto Ty = Op->getResultType(0).dyn_cast<MemRefType>();
  return success(Ty && Ty.hasStaticShape());
}

void AllocaOp::getEffects(Operation *Op,
                          std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Allocate, Op->getResult(0)});
}

LogicalResult LoadOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() < 1 || Op->getNumResults() != 1)
    return failure();
  auto Ty = Op->getOperand(0).getType().dyn_cast<MemRefType>();
  if (!Ty)
    return failure();
  if (Op->getNumOperands() - 1 != Ty.getRank())
    return failure();
  for (unsigned I = 1, E = Op->getNumOperands(); I != E; ++I)
    if (!Op->getOperand(I).getType().isIntOrIndex())
      return failure();
  return success(Op->getResultType(0) == Ty.getElementType());
}

void LoadOp::getEffects(Operation *Op, std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Read, Op->getOperand(0)});
}

LogicalResult StoreOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() < 2 || Op->getNumResults() != 0)
    return failure();
  auto Ty = Op->getOperand(1).getType().dyn_cast<MemRefType>();
  if (!Ty)
    return failure();
  if (Op->getNumOperands() - 2 != Ty.getRank())
    return failure();
  return success(Op->getOperand(0).getType() == Ty.getElementType());
}

void StoreOp::getEffects(Operation *Op, std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Write, Op->getOperand(1)});
}

void memref::registerMemRefDialect(MLIRContext &Context) {
  auto *MemRefDialect =
      Context.registerDialect(std::make_unique<Dialect>("memref", &Context));
  registerOp<AllocaOp>(Context, MemRefDialect,
                       {0, &AllocaOp::verifyOp, nullptr,
                        &AllocaOp::getEffects});
  registerOp<LoadOp>(Context, MemRefDialect,
                     {0, &LoadOp::verifyOp, nullptr, &LoadOp::getEffects});
  registerOp<StoreOp>(Context, MemRefDialect,
                      {0, &StoreOp::verifyOp, nullptr, &StoreOp::getEffects});
}
