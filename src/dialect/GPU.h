//===- GPU.h - Minimal GPU dialect ------------------------------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal `gpu` dialect: the lowering target for device-side
/// synchronization once the SYCL dialect has been converted out
/// (`sycl.group_barrier` lowers to `gpu.barrier`, mirroring the upstream
/// SYCL → GPU dialect path).
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_DIALECT_GPU_H
#define SMLIR_DIALECT_GPU_H

#include "ir/Builders.h"
#include "ir/OpDefinition.h"

namespace smlir {
namespace gpu {

/// `gpu.barrier` — work-group execution and memory barrier. Unlike
/// `sycl.group_barrier` it carries no nd_item operand: the work-group
/// context is implicit after lowering.
class BarrierOp : public OpBase<BarrierOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "gpu.barrier"; }

  static void build(OpBuilder &, OperationState &) {}

  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// Registers the gpu dialect.
void registerGPUDialect(MLIRContext &Context);

} // namespace gpu
} // namespace smlir

#endif // SMLIR_DIALECT_GPU_H
