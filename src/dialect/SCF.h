//===- SCF.h - Structured control flow and affine dialects ------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured control flow (`scf.if`, `scf.for`, `scf.yield`) and the
/// affine loop dialect (`affine.for`, `affine.yield`, `affine.load`,
/// `affine.store`) that the paper's listings and optimizations operate on.
/// Loops carry `iter_args` loop-carried values; the Detect Reduction pass
/// (paper §VI-B) rewrites memory-based reductions into iter_args form.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_DIALECT_SCF_H
#define SMLIR_DIALECT_SCF_H

#include "ir/Block.h"
#include "ir/Builders.h"
#include "ir/OpDefinition.h"

namespace smlir {
namespace scf {

//===----------------------------------------------------------------------===//
// YieldOp
//===----------------------------------------------------------------------===//

/// Terminator yielding values to the parent `scf.if`/`scf.for`.
class YieldOp : public OpBase<YieldOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "scf.yield"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    const std::vector<Value> &Operands = {}) {
    State.addOperands(Operands);
  }
};

//===----------------------------------------------------------------------===//
// IfOp
//===----------------------------------------------------------------------===//

/// Structured conditional with optional else region and results.
class IfOp : public OpBase<IfOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "scf.if"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    Value Condition, const std::vector<Type> &Results = {}) {
    State.addOperand(Condition);
    State.addTypes(Results);
    State.addRegions(2);
  }

  Value getCondition() const { return TheOp->getOperand(0); }
  Region &getThenRegion() const { return TheOp->getRegion(0); }
  Region &getElseRegion() const { return TheOp->getRegion(1); }

  /// Returns the then block, creating it on first use.
  Block *getThenBlock() const {
    return &getThenRegion().getOrCreateEntryBlock();
  }
  bool hasElse() const { return !getElseRegion().empty(); }
  /// Returns the else block, creating it on first use.
  Block *getElseBlock() const {
    return &getElseRegion().getOrCreateEntryBlock();
  }

  static LogicalResult verifyOp(Operation *Op);
};

//===----------------------------------------------------------------------===//
// ForOp
//===----------------------------------------------------------------------===//

/// Counted loop `for %iv = %lb to %ub step %step iter_args(...)`.
class ForOp : public OpBase<ForOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "scf.for"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    Value LowerBound, Value UpperBound, Value Step,
                    const std::vector<Value> &IterArgs = {});

  Value getLowerBound() const { return TheOp->getOperand(0); }
  Value getUpperBound() const { return TheOp->getOperand(1); }
  Value getStep() const { return TheOp->getOperand(2); }
  unsigned getNumIterArgs() const { return TheOp->getNumOperands() - 3; }
  Value getInitArg(unsigned Index) const {
    return TheOp->getOperand(3 + Index);
  }

  /// Returns the loop body, creating the block (induction variable + iter
  /// args) on first use.
  Block *getBody() const;
  Value getInductionVar() const { return getBody()->getArgument(0); }
  Value getRegionIterArg(unsigned Index) const {
    return getBody()->getArgument(1 + Index);
  }

  static LogicalResult verifyOp(Operation *Op);
};

/// Registers the scf dialect.
void registerSCFDialect(MLIRContext &Context);

} // namespace scf

namespace affine {

/// Terminator yielding values to the parent `affine.for`.
class AffineYieldOp : public OpBase<AffineYieldOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "affine.yield"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    const std::vector<Value> &Operands = {}) {
    State.addOperands(Operands);
  }
};

/// Counted affine loop; structurally identical to scf.for but
/// distinguished so affine passes can anchor on it (paper Listings 3-5).
class AffineForOp : public OpBase<AffineForOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "affine.for"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    Value LowerBound, Value UpperBound, Value Step,
                    const std::vector<Value> &IterArgs = {});

  Value getLowerBound() const { return TheOp->getOperand(0); }
  Value getUpperBound() const { return TheOp->getOperand(1); }
  Value getStep() const { return TheOp->getOperand(2); }
  unsigned getNumIterArgs() const { return TheOp->getNumOperands() - 3; }
  Value getInitArg(unsigned Index) const {
    return TheOp->getOperand(3 + Index);
  }

  Block *getBody() const;
  Value getInductionVar() const { return getBody()->getArgument(0); }
  Value getRegionIterArg(unsigned Index) const {
    return getBody()->getArgument(1 + Index);
  }

  static LogicalResult verifyOp(Operation *Op);
};

/// Affine element load; same semantics as memref.load.
class AffineLoadOp : public OpBase<AffineLoadOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "affine.load"; }

  static void build(OpBuilder &Builder, OperationState &State, Value MemRef,
                    const std::vector<Value> &Indices) {
    State.addOperand(MemRef);
    State.addOperands(Indices);
    State.addType(MemRef.getType().cast<MemRefType>().getElementType());
  }

  Value getMemRef() const { return TheOp->getOperand(0); }
  std::vector<Value> getIndices() const {
    std::vector<Value> Operands = TheOp->getOperands();
    return std::vector<Value>(Operands.begin() + 1, Operands.end());
  }

  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// Affine element store; same semantics as memref.store.
class AffineStoreOp : public OpBase<AffineStoreOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "affine.store"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    Value ToStore, Value MemRef,
                    const std::vector<Value> &Indices) {
    State.addOperand(ToStore);
    State.addOperand(MemRef);
    State.addOperands(Indices);
  }

  Value getValueToStore() const { return TheOp->getOperand(0); }
  Value getMemRef() const { return TheOp->getOperand(1); }
  std::vector<Value> getIndices() const {
    std::vector<Value> Operands = TheOp->getOperands();
    return std::vector<Value>(Operands.begin() + 2, Operands.end());
  }

  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// Registers the affine dialect.
void registerAffineDialect(MLIRContext &Context);

} // namespace affine

//===----------------------------------------------------------------------===//
// LoopLikeOp
//===----------------------------------------------------------------------===//

/// Uniform view over `scf.for` and `affine.for` (the project's equivalent
/// of MLIR's LoopLikeOpInterface), used by LICM, Detect Reduction and Loop
/// Internalization.
class LoopLikeOp {
public:
  LoopLikeOp() = default;
  /*implicit*/ LoopLikeOp(scf::ForOp Op) : TheOp(Op.getOperation()) {}
  /*implicit*/ LoopLikeOp(affine::AffineForOp Op)
      : TheOp(Op.getOperation()) {}

  static bool classof(Operation *Op) {
    const std::string &Name = Op->getName().getStringRef();
    return Name == scf::ForOp::getOperationName() ||
           Name == affine::AffineForOp::getOperationName();
  }
  static LoopLikeOp dyn_cast(Operation *Op) {
    LoopLikeOp Loop;
    if (Op && classof(Op))
      Loop.TheOp = Op;
    return Loop;
  }

  explicit operator bool() const { return TheOp != nullptr; }
  Operation *getOperation() const { return TheOp; }
  Operation *operator->() const { return TheOp; }

  bool isAffine() const {
    return TheOp->getName().getStringRef() ==
           affine::AffineForOp::getOperationName();
  }

  Value getLowerBound() const { return TheOp->getOperand(0); }
  Value getUpperBound() const { return TheOp->getOperand(1); }
  Value getStep() const { return TheOp->getOperand(2); }
  unsigned getNumIterArgs() const { return TheOp->getNumOperands() - 3; }
  Value getInitArg(unsigned Index) const {
    return TheOp->getOperand(3 + Index);
  }

  Block *getBody() const;
  Value getInductionVar() const { return getBody()->getArgument(0); }
  Value getRegionIterArg(unsigned Index) const {
    return getBody()->getArgument(1 + Index);
  }
  Operation *getYield() const { return getBody()->getTerminator(); }

  /// True if \p Val is defined outside the loop body.
  bool isDefinedOutsideOfLoop(Value Val) const;

  /// The yield/terminator op name matching this loop's dialect.
  const char *getYieldOpName() const {
    return isAffine() ? affine::AffineYieldOp::getOperationName()
                      : scf::YieldOp::getOperationName();
  }

private:
  Operation *TheOp = nullptr;
};

} // namespace smlir

#endif // SMLIR_DIALECT_SCF_H
