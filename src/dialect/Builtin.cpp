//===- Builtin.cpp - Builtin and func dialects ------------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dialect/Builtin.h"

#include "ir/Block.h"

using namespace smlir;

//===----------------------------------------------------------------------===//
// ModuleOp
//===----------------------------------------------------------------------===//

void ModuleOp::build(OpBuilder &Builder, OperationState &State,
                     std::string_view Name) {
  if (!Name.empty())
    State.addAttribute("sym_name",
                       StringAttr::get(Builder.getContext(), Name));
  State.addRegion();
}

ModuleOp ModuleOp::create(MLIRContext *Context, std::string_view Name) {
  OpBuilder Builder(Context);
  OperationState State(Location::unknown(Context), getOperationName());
  build(Builder, State, Name);
  Operation *Op = Operation::create(Context, State);
  Op->getRegion(0).getOrCreateEntryBlock();
  return ModuleOp(Op);
}

Operation *ModuleOp::lookupSymbol(std::string_view Name) const {
  for (Operation *Op : *getBody()) {
    auto SymName = Op->getAttrOfType<StringAttr>("sym_name");
    if (SymName && SymName.getValue() == Name)
      return Op;
  }
  return nullptr;
}

Operation *ModuleOp::lookupSymbol(SymbolRefAttr Ref) const {
  Operation *Current = getOperation();
  const auto &Path = Ref.getPath();
  for (size_t I = 0; I < Path.size(); ++I) {
    auto Module = ModuleOp::dyn_cast(Current);
    if (!Module)
      return nullptr;
    Current = Module.lookupSymbol(Path[I]);
    if (!Current)
      return nullptr;
  }
  return Current;
}

LogicalResult ModuleOp::verifyOp(Operation *Op) {
  if (Op->getNumRegions() != 1 || Op->getNumResults() != 0 ||
      Op->getNumOperands() != 0)
    return failure();
  return success();
}

//===----------------------------------------------------------------------===//
// FuncOp
//===----------------------------------------------------------------------===//

void FuncOp::build(OpBuilder &Builder, OperationState &State,
                   std::string_view Name, FunctionType Ty) {
  State.addAttribute("sym_name", StringAttr::get(Builder.getContext(), Name));
  State.addAttribute("function_type", TypeAttr::get(Ty));
  State.addRegion();
}

Block *FuncOp::addEntryBlock() {
  assert(isDeclaration() && "function already has a body");
  Block &Entry = TheOp->getRegion(0).emplaceBlock();
  for (Type Input : getFunctionType().getInputs())
    Entry.addArgument(Input);
  return &Entry;
}

void FuncOp::eraseArgument(unsigned Index) {
  FunctionType Ty = getFunctionType();
  std::vector<Type> Inputs = Ty.getInputs();
  assert(Index < Inputs.size() && "argument index out of range");
  Inputs.erase(Inputs.begin() + Index);
  setFunctionType(
      FunctionType::get(getContext(), std::move(Inputs), Ty.getResults()));
  if (!isDeclaration())
    getEntryBlock()->eraseArgument(Index);
}

LogicalResult FuncOp::verifyOp(Operation *Op) {
  auto TyAttr = Op->getAttrOfType<TypeAttr>("function_type");
  if (!TyAttr || !TyAttr.getValue().isa<FunctionType>())
    return failure();
  if (!Op->getAttrOfType<StringAttr>("sym_name"))
    return failure();
  FuncOp Func = FuncOp::cast(Op);
  if (Func.isDeclaration())
    return success();
  auto FuncTy = TyAttr.getValue().cast<FunctionType>();
  Block *Entry = Func.getEntryBlock();
  if (Entry->getNumArguments() != FuncTy.getNumInputs())
    return failure();
  for (unsigned I = 0, E = FuncTy.getNumInputs(); I != E; ++I)
    if (Entry->getArgument(I).getType() != FuncTy.getInput(I))
      return failure();
  return success();
}

//===----------------------------------------------------------------------===//
// ReturnOp
//===----------------------------------------------------------------------===//

void ReturnOp::build(OpBuilder &Builder, OperationState &State,
                     const std::vector<Value> &Operands) {
  State.addOperands(Operands);
}

LogicalResult ReturnOp::verifyOp(Operation *Op) {
  auto Func = FuncOp::dyn_cast(Op->getParentOp());
  if (!Func)
    return failure();
  FunctionType FuncTy = Func.getFunctionType();
  if (Op->getNumOperands() != FuncTy.getNumResults())
    return failure();
  for (unsigned I = 0, E = Op->getNumOperands(); I != E; ++I)
    if (Op->getOperand(I).getType() != FuncTy.getResult(I))
      return failure();
  return success();
}

//===----------------------------------------------------------------------===//
// CallOp
//===----------------------------------------------------------------------===//

void CallOp::build(OpBuilder &Builder, OperationState &State,
                   std::string_view Callee,
                   const std::vector<Value> &Operands,
                   const std::vector<Type> &Results) {
  State.addAttribute("callee",
                     SymbolRefAttr::get(Builder.getContext(), Callee));
  State.addOperands(Operands);
  State.addTypes(Results);
}

FuncOp CallOp::resolveCallee(ModuleOp Scope) const {
  return FuncOp::dyn_cast(Scope.lookupSymbol(getCallee()));
}

LogicalResult CallOp::verifyOp(Operation *Op) {
  return success(Op->getAttrOfType<SymbolRefAttr>("callee") ? true : false);
}

//===----------------------------------------------------------------------===//
// UnrealizedConversionCastOp
//===----------------------------------------------------------------------===//

LogicalResult UnrealizedConversionCastOp::verifyOp(Operation *Op) {
  return success(Op->getNumOperands() == 1 && Op->getNumResults() == 1);
}

//===----------------------------------------------------------------------===//
// Registration
//===----------------------------------------------------------------------===//

void smlir::registerBuiltinDialect(MLIRContext &Context) {
  auto *BuiltinDialect =
      Context.registerDialect(std::make_unique<Dialect>("builtin", &Context));
  auto *FuncDialect =
      Context.registerDialect(std::make_unique<Dialect>("func", &Context));

  registerOp<ModuleOp>(Context, BuiltinDialect,
                       {traits(OpTrait::IsolatedFromAbove, OpTrait::Symbol,
                               OpTrait::SymbolTable,
                               OpTrait::RecursiveMemoryEffects),
                        &ModuleOp::verifyOp});
  registerOp<FuncOp>(Context, FuncDialect,
                     {traits(OpTrait::IsolatedFromAbove, OpTrait::Symbol),
                      &FuncOp::verifyOp});
  registerOp<ReturnOp>(Context, FuncDialect,
                       {traits(OpTrait::IsTerminator), &ReturnOp::verifyOp});
  registerOp<CallOp>(Context, FuncDialect, {0, &CallOp::verifyOp});
  registerOp<UnrealizedConversionCastOp>(
      Context, BuiltinDialect,
      {traits(OpTrait::Pure), &UnrealizedConversionCastOp::verifyOp});
}
