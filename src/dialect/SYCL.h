//===- SYCL.h - SYCL dialect (types, device ops, host ops) ------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SYCL dialect (paper §IV): types modeling the SYCL classes `id`,
/// `range`, `item`, `nd_item`, `group`, `nd_range`, `accessor` and
/// `buffer`; device operations for work-item queries and accessor memory
/// access; host operations (`sycl.host.*`) capturing object construction
/// and kernel scheduling (paper Listing 9). Operations yielding work-item
/// dependent values carry the NonUniformSource trait consumed by the
/// Uniformity Analysis (paper §V-C).
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_DIALECT_SYCL_H
#define SMLIR_DIALECT_SYCL_H

#include "ir/Builders.h"
#include "ir/OpDefinition.h"

namespace smlir {
namespace sycl {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// Access mode of an accessor (paper §II-A: encoded statically via template
/// parameters in SYCL).
enum class AccessMode { Read, Write, ReadWrite };

/// Where an accessor points: global device memory or work-group local
/// memory.
enum class AccessTarget { Device, Local };

std::string_view stringifyAccessMode(AccessMode Mode);
std::string_view stringifyAccessTarget(AccessTarget Target);

/// Declares a SYCL type parameterized only by dimensionality (1-3).
#define SMLIR_DECLARE_SYCL_DIM_TYPE(ClassName, Mnemonic)                      \
  class ClassName : public Type {                                            \
  public:                                                                     \
    using Type::Type;                                                         \
    static ClassName get(MLIRContext *Context, unsigned Dim);                 \
    unsigned getDim() const;                                                  \
    static bool classof(Type Ty);                                             \
    static constexpr const char *getMnemonic() { return Mnemonic; }           \
  };

SMLIR_DECLARE_SYCL_DIM_TYPE(IDType, "id")
SMLIR_DECLARE_SYCL_DIM_TYPE(RangeType, "range")
SMLIR_DECLARE_SYCL_DIM_TYPE(ItemType, "item")
SMLIR_DECLARE_SYCL_DIM_TYPE(NDItemType, "nd_item")
SMLIR_DECLARE_SYCL_DIM_TYPE(GroupType, "group")
SMLIR_DECLARE_SYCL_DIM_TYPE(NDRangeType, "nd_range")

#undef SMLIR_DECLARE_SYCL_DIM_TYPE

/// `!sycl.accessor<dims, elem, mode, target>`: typed window into a buffer
/// (or local memory), carrying the dynamic range/offset at runtime.
class AccessorType : public Type {
public:
  using Type::Type;
  static AccessorType get(MLIRContext *Context, unsigned Dim,
                          Type ElementType, AccessMode Mode,
                          AccessTarget Target = AccessTarget::Device);
  unsigned getDim() const;
  Type getElementType() const;
  AccessMode getMode() const;
  AccessTarget getTarget() const;
  bool isLocal() const { return getTarget() == AccessTarget::Local; }
  static bool classof(Type Ty);
};

/// `!sycl.buffer<dims, elem>`: host-side owning container (paper §II-A).
class BufferType : public Type {
public:
  using Type::Type;
  static BufferType get(MLIRContext *Context, unsigned Dim,
                        Type ElementType);
  unsigned getDim() const;
  Type getElementType() const;
  static bool classof(Type Ty);
};

/// Returns `memref<1x!objTy>` — SYCL objects live behind memrefs in device
/// IR, matching the paper's listings (e.g. `memref<1x!sycl_id_3>`).
MemRefType getObjectMemRefType(Type ObjTy);
/// Returns `memref<?x!objTy>` — used for kernel arguments.
MemRefType getObjectArgMemRefType(Type ObjTy);

//===----------------------------------------------------------------------===//
// Device operations
//===----------------------------------------------------------------------===//

/// `sycl.constructor @id(%dst, %i, %j, %k)` — constructs an id/range into
/// the destination memref (paper Listing 3 line 18).
class ConstructorOp : public OpBase<ConstructorOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() {
    return "sycl.constructor";
  }

  static void build(OpBuilder &Builder, OperationState &State,
                    std::string_view Kind, Value Dst,
                    const std::vector<Value> &Indices);

  std::string getKind() const {
    return TheOp->getAttrOfType<SymbolRefAttr>("kind").getLeafReference();
  }
  Value getDst() const { return TheOp->getOperand(0); }
  std::vector<Value> getIndices() const {
    std::vector<Value> Operands = TheOp->getOperands();
    return std::vector<Value>(Operands.begin() + 1, Operands.end());
  }

  static LogicalResult verifyOp(Operation *Op);
  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// Declares a `(obj-memref, i32 dim) -> index` SYCL getter op.
#define SMLIR_DECLARE_SYCL_GETTER_OP(ClassName, OpName)                       \
  class ClassName : public OpBase<ClassName> {                                \
  public:                                                                     \
    using OpBase::OpBase;                                                     \
    static constexpr const char *getOperationName() { return OpName; }        \
    static void build(OpBuilder &Builder, OperationState &State, Value Obj,   \
                      Value Dim) {                                            \
      State.addOperands({Obj, Dim});                                          \
      State.addType(Builder.getIndexType());                                  \
    }                                                                         \
    Value getObj() const { return TheOp->getOperand(0); }                     \
    Value getDim() const { return TheOp->getOperand(1); }                     \
    static void getEffects(Operation *Op,                                     \
                           std::vector<MemoryEffect> &Effects) {              \
      Effects.push_back({EffectKind::Read, Op->getOperand(0)});               \
    }                                                                         \
  };

// id / range element access.
SMLIR_DECLARE_SYCL_GETTER_OP(IDGetOp, "sycl.id.get")
SMLIR_DECLARE_SYCL_GETTER_OP(RangeGetOp, "sycl.range.get")
// item queries (paper Listing 3).
SMLIR_DECLARE_SYCL_GETTER_OP(ItemGetIDOp, "sycl.item.get_id")
SMLIR_DECLARE_SYCL_GETTER_OP(ItemGetRangeOp, "sycl.item.get_range")
// nd_item queries (paper Listing 2, Listings 6-7).
SMLIR_DECLARE_SYCL_GETTER_OP(NDItemGetGlobalIDOp,
                             "sycl.nd_item.get_global_id")
SMLIR_DECLARE_SYCL_GETTER_OP(NDItemGetLocalIDOp, "sycl.nd_item.get_local_id")
SMLIR_DECLARE_SYCL_GETTER_OP(NDItemGetGroupIDOp, "sycl.nd_item.get_group_id")
SMLIR_DECLARE_SYCL_GETTER_OP(NDItemGetGlobalRangeOp,
                             "sycl.nd_item.get_global_range")
SMLIR_DECLARE_SYCL_GETTER_OP(NDItemGetLocalRangeOp,
                             "sycl.nd_item.get_local_range")
SMLIR_DECLARE_SYCL_GETTER_OP(NDItemGetGroupRangeOp,
                             "sycl.nd_item.get_group_range")
// accessor member queries (paper §VII-B: accessor members propagation).
SMLIR_DECLARE_SYCL_GETTER_OP(AccessorGetRangeOp, "sycl.accessor.get_range")
SMLIR_DECLARE_SYCL_GETTER_OP(AccessorGetOffsetOp, "sycl.accessor.get_offset")

#undef SMLIR_DECLARE_SYCL_GETTER_OP

/// `sycl.accessor.subscript %acc[%id]` — yields a one-element view into the
/// accessor's memory (paper Listing 3 line 20).
class AccessorSubscriptOp : public OpBase<AccessorSubscriptOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() {
    return "sycl.accessor.subscript";
  }

  static void build(OpBuilder &Builder, OperationState &State,
                    Value Accessor, Value ID);

  Value getAccessor() const { return TheOp->getOperand(0); }
  Value getID() const { return TheOp->getOperand(1); }
  /// The accessor type of the subscripted accessor operand.
  AccessorType getAccessorType() const;

  static LogicalResult verifyOp(Operation *Op);
  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// `sycl.accessor.get_pointer %acc` — the raw memory view of an accessor.
class AccessorGetPointerOp : public OpBase<AccessorGetPointerOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() {
    return "sycl.accessor.get_pointer";
  }

  static void build(OpBuilder &Builder, OperationState &State,
                    Value Accessor);

  Value getAccessor() const { return TheOp->getOperand(0); }

  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// `sycl.accessors.disjoint %a, %b -> i1` — runtime check that two
/// accessors cover disjoint memory. Materialized by the LICM pass when
/// hoisting is blocked only by a may-alias relation that can be resolved
/// at runtime (paper §VI-A: "versioning the transformed loop with a
/// versioning condition to check that the operands preventing hoisting do
/// not overlap in memory").
class AccessorsDisjointOp : public OpBase<AccessorsDisjointOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() {
    return "sycl.accessors.disjoint";
  }

  static void build(OpBuilder &Builder, OperationState &State, Value A,
                    Value B) {
    State.addOperands({A, B});
    State.addType(Builder.getI1Type());
  }

  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects) {
    Effects.push_back({EffectKind::Read, Op->getOperand(0)});
    Effects.push_back({EffectKind::Read, Op->getOperand(1)});
  }
};

/// `sycl.group_barrier %nditem` — work-group barrier (paper Listing 7).
/// Must not execute in a divergent region (paper §V-C / §VI-C).
class GroupBarrierOp : public OpBase<GroupBarrierOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() {
    return "sycl.group_barrier";
  }

  static void build(OpBuilder &Builder, OperationState &State,
                    Value NDItem) {
    State.addOperand(NDItem);
  }

  Value getNDItem() const { return TheOp->getOperand(0); }

  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

//===----------------------------------------------------------------------===//
// Host operations (paper §VII-A, Listing 9)
//===----------------------------------------------------------------------===//

/// `sycl.host.constructor(%obj, %args...) {objType = !sycl.buffer<...>}` —
/// raised construction of a SYCL runtime object.
class HostConstructorOp : public OpBase<HostConstructorOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() {
    return "sycl.host.constructor";
  }

  static void build(OpBuilder &Builder, OperationState &State, Value Obj,
                    const std::vector<Value> &Args, Type ObjType);

  Value getObj() const { return TheOp->getOperand(0); }
  Type getObjType() const {
    return TheOp->getAttrOfType<TypeAttr>("objType").getValue();
  }
  std::vector<Value> getArgs() const {
    std::vector<Value> Operands = TheOp->getOperands();
    return std::vector<Value>(Operands.begin() + 1, Operands.end());
  }

  static LogicalResult verifyOp(Operation *Op);
  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// `sycl.host.schedule_kernel %handler -> @kernels::@K [range %r](%args)` —
/// raised kernel scheduling carrying the full invocation context: ND-range
/// and kernel arguments (paper Listing 9 line 11).
class HostScheduleKernelOp : public OpBase<HostScheduleKernelOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() {
    return "sycl.host.schedule_kernel";
  }

  /// \p ArgKinds holds one of "accessor", "scalar" per kernel argument.
  static void build(OpBuilder &Builder, OperationState &State, Value Handler,
                    SymbolRefAttr Kernel, Value GlobalRange,
                    Value LocalRange /*null if none*/,
                    const std::vector<Value> &Args,
                    const std::vector<std::string> &ArgKinds);

  Value getHandler() const { return TheOp->getOperand(0); }
  SymbolRefAttr getKernel() const {
    return TheOp->getAttrOfType<SymbolRefAttr>("kernel");
  }
  Value getGlobalRange() const { return TheOp->getOperand(1); }
  bool hasLocalRange() const { return TheOp->hasAttr("has_local_range"); }
  Value getLocalRange() const {
    assert(hasLocalRange() && "no local range operand");
    return TheOp->getOperand(2);
  }
  unsigned getNumKernelArgs() const {
    return TheOp->getNumOperands() - (hasLocalRange() ? 3 : 2);
  }
  Value getKernelArg(unsigned Index) const {
    return TheOp->getOperand((hasLocalRange() ? 3 : 2) + Index);
  }
  std::string getArgKind(unsigned Index) const {
    return TheOp->getAttrOfType<ArrayAttr>("arg_kinds")[Index]
        .cast<StringAttr>()
        .getValue();
  }

  static LogicalResult verifyOp(Operation *Op);
};

//===----------------------------------------------------------------------===//
// Lowered device ABI (convert-sycl-to-scf)
//===----------------------------------------------------------------------===//

/// After dialect conversion the item/nd_item kernel argument becomes a
/// private `memref<15xindex>` holding the work-item identity; getters
/// lower to loads at these field offsets. The virtual device fills the
/// same layout when launching a kernel carrying the
/// `sycl.lowered` unit attribute (kLoweredKernelAttrName).
enum ItemStateField : int64_t {
  ItemStateGlobalID = 0,
  ItemStateGlobalRange = 3,
  ItemStateLocalID = 6,
  ItemStateLocalRange = 9,
  ItemStateGroupID = 12,
  ItemStateWords = 15,
};

/// Unit attribute marking a kernel converted to the lowered device ABI.
inline constexpr std::string_view kLoweredKernelAttrName = "sycl.lowered";

/// Registers the sycl dialect (types and ops).
void registerSYCLDialect(MLIRContext &Context);

} // namespace sycl

//===----------------------------------------------------------------------===//
// LLVM-like dialect (pre-raising host IR)
//===----------------------------------------------------------------------===//

namespace llvmir {

/// `!llvm.ptr` — opaque pointer used by unraised host code.
class PtrType : public Type {
public:
  using Type::Type;
  static PtrType get(MLIRContext *Context);
  static bool classof(Type Ty);
};

/// Stack allocation of a runtime object; `objType` plays the role of the
/// allocated type in LLVM IR's `alloca`.
class LLVMAllocaOp : public OpBase<LLVMAllocaOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "llvm.alloca"; }

  static void build(OpBuilder &Builder, OperationState &State, Type ObjType);

  Type getObjType() const {
    auto Attr = TheOp->getAttrOfType<TypeAttr>("objType");
    return Attr ? Attr.getValue() : Type();
  }

  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// Call into the (simulated) DPC++ runtime ABI; the Host Raising pass
/// pattern-matches these by callee name (paper §VII-A).
class LLVMCallOp : public OpBase<LLVMCallOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "llvm.call"; }

  static void build(OpBuilder &Builder, OperationState &State,
                    std::string_view Callee,
                    const std::vector<Value> &Operands,
                    const std::vector<Type> &Results = {});

  std::string getCallee() const {
    return TheOp->getAttrOfType<SymbolRefAttr>("callee").getLeafReference();
  }
};

/// Scalar load through an opaque pointer.
class LLVMLoadOp : public OpBase<LLVMLoadOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "llvm.load"; }

  static void build(OpBuilder &Builder, OperationState &State, Value Ptr,
                    Type ResultTy) {
    State.addOperand(Ptr);
    State.addType(ResultTy);
  }

  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// Scalar store through an opaque pointer.
class LLVMStoreOp : public OpBase<LLVMStoreOp> {
public:
  using OpBase::OpBase;
  static constexpr const char *getOperationName() { return "llvm.store"; }

  static void build(OpBuilder &Builder, OperationState &State, Value Val,
                    Value Ptr) {
    State.addOperands({Val, Ptr});
  }

  static void getEffects(Operation *Op, std::vector<MemoryEffect> &Effects);
};

/// Registers the llvm-like dialect.
void registerLLVMDialect(MLIRContext &Context);

} // namespace llvmir
} // namespace smlir

#endif // SMLIR_DIALECT_SYCL_H
