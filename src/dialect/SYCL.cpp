//===- SYCL.cpp - SYCL dialect (types, device ops, host ops) ----------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dialect/SYCL.h"

#include "ir/Parser.h"

#include <optional>
#include <sstream>

using namespace smlir;
using namespace smlir::sycl;

//===----------------------------------------------------------------------===//
// Enum helpers
//===----------------------------------------------------------------------===//

std::string_view sycl::stringifyAccessMode(AccessMode Mode) {
  switch (Mode) {
  case AccessMode::Read:
    return "read";
  case AccessMode::Write:
    return "write";
  case AccessMode::ReadWrite:
    return "read_write";
  }
  return "";
}

std::string_view sycl::stringifyAccessTarget(AccessTarget Target) {
  switch (Target) {
  case AccessTarget::Device:
    return "device";
  case AccessTarget::Local:
    return "local";
  }
  return "";
}

static std::optional<AccessMode> parseAccessMode(std::string_view Str) {
  if (Str == "read")
    return AccessMode::Read;
  if (Str == "write")
    return AccessMode::Write;
  if (Str == "read_write")
    return AccessMode::ReadWrite;
  return std::nullopt;
}

static std::optional<AccessTarget> parseAccessTarget(std::string_view Str) {
  if (Str == "device")
    return AccessTarget::Device;
  if (Str == "local")
    return AccessTarget::Local;
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Type storages
//===----------------------------------------------------------------------===//

namespace {

/// Shared storage shape for dimension-only SYCL types; Tag provides the
/// distinct TypeID per concrete type.
template <typename Tag>
struct DimTypeStorage : detail::TypeStorage {
  DimTypeStorage(MLIRContext *Context, std::string Key, unsigned Dim)
      : TypeStorage(TypeID::get<DimTypeStorage<Tag>>(), Context,
                    std::move(Key)),
        Dim(Dim) {}
  unsigned Dim;
};

struct AccessorTypeStorage : detail::TypeStorage {
  AccessorTypeStorage(MLIRContext *Context, std::string Key, unsigned Dim,
                      Type ElementType, AccessMode Mode, AccessTarget Target)
      : TypeStorage(TypeID::get<AccessorTypeStorage>(), Context,
                    std::move(Key)),
        Dim(Dim), ElementType(ElementType), Mode(Mode), Target(Target) {}
  unsigned Dim;
  Type ElementType;
  AccessMode Mode;
  AccessTarget Target;
};

struct BufferTypeStorage : detail::TypeStorage {
  BufferTypeStorage(MLIRContext *Context, std::string Key, unsigned Dim,
                    Type ElementType)
      : TypeStorage(TypeID::get<BufferTypeStorage>(), Context,
                    std::move(Key)),
        Dim(Dim), ElementType(ElementType) {}
  unsigned Dim;
  Type ElementType;
};

struct PtrTypeStorage : detail::TypeStorage {
  PtrTypeStorage(MLIRContext *Context, std::string Key)
      : TypeStorage(TypeID::get<PtrTypeStorage>(), Context, std::move(Key)) {}
};

} // namespace

#define SMLIR_DEFINE_SYCL_DIM_TYPE(ClassName)                                 \
  namespace {                                                                 \
  struct ClassName##Tag {};                                                   \
  }                                                                           \
  ClassName ClassName::get(MLIRContext *Context, unsigned Dim) {              \
    assert(Dim >= 1 && Dim <= 3 && "SYCL types are 1-3 dimensional");         \
    std::string Key = std::string("!sycl.") + getMnemonic() + "<" +           \
                      std::to_string(Dim) + ">";                              \
    auto *Storage = Context->getTypeStorage(Key, [&] {                        \
      return std::make_unique<DimTypeStorage<ClassName##Tag>>(Context, Key,   \
                                                              Dim);           \
    });                                                                       \
    return ClassName(Storage);                                                \
  }                                                                           \
  unsigned ClassName::getDim() const {                                        \
    return static_cast<const DimTypeStorage<ClassName##Tag> *>(Impl)->Dim;    \
  }                                                                           \
  bool ClassName::classof(Type Ty) {                                          \
    return Ty.getTypeID() == TypeID::get<DimTypeStorage<ClassName##Tag>>();   \
  }

SMLIR_DEFINE_SYCL_DIM_TYPE(IDType)
SMLIR_DEFINE_SYCL_DIM_TYPE(RangeType)
SMLIR_DEFINE_SYCL_DIM_TYPE(ItemType)
SMLIR_DEFINE_SYCL_DIM_TYPE(NDItemType)
SMLIR_DEFINE_SYCL_DIM_TYPE(GroupType)
SMLIR_DEFINE_SYCL_DIM_TYPE(NDRangeType)

#undef SMLIR_DEFINE_SYCL_DIM_TYPE

AccessorType AccessorType::get(MLIRContext *Context, unsigned Dim,
                               Type ElementType, AccessMode Mode,
                               AccessTarget Target) {
  std::ostringstream Key;
  Key << "!sycl.accessor<" << Dim << ", " << ElementType.str() << ", "
      << stringifyAccessMode(Mode) << ", " << stringifyAccessTarget(Target)
      << ">";
  std::string KeyStr = Key.str();
  auto *Storage = Context->getTypeStorage(KeyStr, [&] {
    return std::make_unique<AccessorTypeStorage>(Context, KeyStr, Dim,
                                                 ElementType, Mode, Target);
  });
  return AccessorType(Storage);
}

unsigned AccessorType::getDim() const {
  return static_cast<const AccessorTypeStorage *>(Impl)->Dim;
}
Type AccessorType::getElementType() const {
  return static_cast<const AccessorTypeStorage *>(Impl)->ElementType;
}
AccessMode AccessorType::getMode() const {
  return static_cast<const AccessorTypeStorage *>(Impl)->Mode;
}
AccessTarget AccessorType::getTarget() const {
  return static_cast<const AccessorTypeStorage *>(Impl)->Target;
}
bool AccessorType::classof(Type Ty) {
  return Ty.getTypeID() == TypeID::get<AccessorTypeStorage>();
}

BufferType BufferType::get(MLIRContext *Context, unsigned Dim,
                           Type ElementType) {
  std::ostringstream Key;
  Key << "!sycl.buffer<" << Dim << ", " << ElementType.str() << ">";
  std::string KeyStr = Key.str();
  auto *Storage = Context->getTypeStorage(KeyStr, [&] {
    return std::make_unique<BufferTypeStorage>(Context, KeyStr, Dim,
                                               ElementType);
  });
  return BufferType(Storage);
}

unsigned BufferType::getDim() const {
  return static_cast<const BufferTypeStorage *>(Impl)->Dim;
}
Type BufferType::getElementType() const {
  return static_cast<const BufferTypeStorage *>(Impl)->ElementType;
}
bool BufferType::classof(Type Ty) {
  return Ty.getTypeID() == TypeID::get<BufferTypeStorage>();
}

MemRefType sycl::getObjectMemRefType(Type ObjTy) {
  return MemRefType::get(ObjTy.getContext(), {1}, ObjTy);
}

MemRefType sycl::getObjectArgMemRefType(Type ObjTy) {
  return MemRefType::get(ObjTy.getContext(), {MemRefType::kDynamic}, ObjTy);
}

//===----------------------------------------------------------------------===//
// SYCL type parsing (hooked into the IR parser)
//===----------------------------------------------------------------------===//

/// Splits "a, b, c" at depth-0 commas.
static std::vector<std::string_view> splitParams(std::string_view Body) {
  std::vector<std::string_view> Parts;
  unsigned Depth = 0;
  size_t Start = 0;
  for (size_t I = 0; I < Body.size(); ++I) {
    char C = Body[I];
    if (C == '<' || C == '(')
      ++Depth;
    else if (C == '>' || C == ')')
      --Depth;
    else if (C == ',' && Depth == 0) {
      Parts.push_back(Body.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  Parts.push_back(Body.substr(Start));
  // Trim whitespace.
  for (auto &Part : Parts) {
    while (!Part.empty() && Part.front() == ' ')
      Part.remove_prefix(1);
    while (!Part.empty() && Part.back() == ' ')
      Part.remove_suffix(1);
  }
  return Parts;
}

/// Parses "sycl.<mnemonic><params>" (text after '!').
static Type parseSYCLType(MLIRContext *Context, std::string_view Text) {
  if (!Text.starts_with("sycl."))
    return Type();
  Text.remove_prefix(5);
  size_t Open = Text.find('<');
  if (Open == std::string_view::npos || Text.back() != '>')
    return Type();
  std::string_view Mnemonic = Text.substr(0, Open);
  std::string_view Body = Text.substr(Open + 1, Text.size() - Open - 2);
  std::vector<std::string_view> Params = splitParams(Body);

  auto ParseDim = [](std::string_view Str) -> std::optional<unsigned> {
    if (Str == "1")
      return 1;
    if (Str == "2")
      return 2;
    if (Str == "3")
      return 3;
    return std::nullopt;
  };

  if (Mnemonic == "accessor") {
    if (Params.size() != 4)
      return Type();
    auto Dim = ParseDim(Params[0]);
    Type Element = parseTypeString(Context, Params[1]);
    auto Mode = parseAccessMode(Params[2]);
    auto Target = parseAccessTarget(Params[3]);
    if (!Dim || !Element || !Mode || !Target)
      return Type();
    return AccessorType::get(Context, *Dim, Element, *Mode, *Target);
  }
  if (Mnemonic == "buffer") {
    if (Params.size() != 2)
      return Type();
    auto Dim = ParseDim(Params[0]);
    Type Element = parseTypeString(Context, Params[1]);
    if (!Dim || !Element)
      return Type();
    return BufferType::get(Context, *Dim, Element);
  }
  if (Params.size() != 1)
    return Type();
  auto Dim = ParseDim(Params[0]);
  if (!Dim)
    return Type();
  if (Mnemonic == "id")
    return IDType::get(Context, *Dim);
  if (Mnemonic == "range")
    return RangeType::get(Context, *Dim);
  if (Mnemonic == "item")
    return ItemType::get(Context, *Dim);
  if (Mnemonic == "nd_item")
    return NDItemType::get(Context, *Dim);
  if (Mnemonic == "group")
    return GroupType::get(Context, *Dim);
  if (Mnemonic == "nd_range")
    return NDRangeType::get(Context, *Dim);
  return Type();
}

//===----------------------------------------------------------------------===//
// Device operations
//===----------------------------------------------------------------------===//

void ConstructorOp::build(OpBuilder &Builder, OperationState &State,
                          std::string_view Kind, Value Dst,
                          const std::vector<Value> &Indices) {
  State.addAttribute("kind",
                     SymbolRefAttr::get(Builder.getContext(), Kind));
  State.addOperand(Dst);
  State.addOperands(Indices);
}

LogicalResult ConstructorOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() < 1 || Op->getNumResults() != 0)
    return failure();
  if (!Op->getAttrOfType<SymbolRefAttr>("kind"))
    return failure();
  auto DstTy = Op->getOperand(0).getType().dyn_cast<MemRefType>();
  if (!DstTy)
    return failure();
  Type Element = DstTy.getElementType();
  unsigned Dim = 0;
  if (auto ID = Element.dyn_cast<IDType>())
    Dim = ID.getDim();
  else if (auto Range = Element.dyn_cast<RangeType>())
    Dim = Range.getDim();
  else
    return failure();
  return success(Op->getNumOperands() - 1 == Dim);
}

void ConstructorOp::getEffects(Operation *Op,
                               std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Write, Op->getOperand(0)});
}

void AccessorSubscriptOp::build(OpBuilder &Builder, OperationState &State,
                                Value Accessor, Value ID) {
  State.addOperands({Accessor, ID});
  auto AccTy = Accessor.getType()
                   .cast<MemRefType>()
                   .getElementType()
                   .cast<AccessorType>();
  MemorySpace Space =
      AccTy.isLocal() ? MemorySpace::Local : MemorySpace::Global;
  State.addType(MemRefType::get(Builder.getContext(),
                                {MemRefType::kDynamic},
                                AccTy.getElementType(), Space));
}

AccessorType AccessorSubscriptOp::getAccessorType() const {
  return getAccessor()
      .getType()
      .cast<MemRefType>()
      .getElementType()
      .cast<AccessorType>();
}

LogicalResult AccessorSubscriptOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() != 2 || Op->getNumResults() != 1)
    return failure();
  auto AccMemTy = Op->getOperand(0).getType().dyn_cast<MemRefType>();
  auto IDMemTy = Op->getOperand(1).getType().dyn_cast<MemRefType>();
  if (!AccMemTy || !IDMemTy)
    return failure();
  auto AccTy = AccMemTy.getElementType().dyn_cast<AccessorType>();
  auto IDTy = IDMemTy.getElementType().dyn_cast<IDType>();
  if (!AccTy || !IDTy)
    return failure();
  return success(AccTy.getDim() == IDTy.getDim());
}

void AccessorSubscriptOp::getEffects(Operation *Op,
                                     std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Read, Op->getOperand(0)});
  Effects.push_back({EffectKind::Read, Op->getOperand(1)});
}

void AccessorGetPointerOp::build(OpBuilder &Builder, OperationState &State,
                                 Value Accessor) {
  State.addOperand(Accessor);
  auto AccTy = Accessor.getType()
                   .cast<MemRefType>()
                   .getElementType()
                   .cast<AccessorType>();
  MemorySpace Space =
      AccTy.isLocal() ? MemorySpace::Local : MemorySpace::Global;
  State.addType(MemRefType::get(Builder.getContext(),
                                {MemRefType::kDynamic},
                                AccTy.getElementType(), Space));
}

void AccessorGetPointerOp::getEffects(Operation *Op,
                                      std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Read, Op->getOperand(0)});
}

void GroupBarrierOp::getEffects(Operation *Op,
                                std::vector<MemoryEffect> &Effects) {
  // A barrier orders all memory accesses of the work-group: model as a
  // read/write on an unspecified resource so nothing is moved across it.
  Effects.push_back({EffectKind::Read, Value()});
  Effects.push_back({EffectKind::Write, Value()});
}

//===----------------------------------------------------------------------===//
// Host operations
//===----------------------------------------------------------------------===//

void HostConstructorOp::build(OpBuilder &Builder, OperationState &State,
                              Value Obj, const std::vector<Value> &Args,
                              Type ObjType) {
  State.addOperand(Obj);
  State.addOperands(Args);
  State.addAttribute("objType", TypeAttr::get(ObjType));
}

LogicalResult HostConstructorOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() < 1 || Op->getNumResults() != 0)
    return failure();
  return success(Op->getAttrOfType<TypeAttr>("objType") ? true : false);
}

void HostConstructorOp::getEffects(Operation *Op,
                                   std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Write, Op->getOperand(0)});
  for (unsigned I = 1, E = Op->getNumOperands(); I != E; ++I)
    Effects.push_back({EffectKind::Read, Op->getOperand(I)});
}

void HostScheduleKernelOp::build(OpBuilder &Builder, OperationState &State,
                                 Value Handler, SymbolRefAttr Kernel,
                                 Value GlobalRange, Value LocalRange,
                                 const std::vector<Value> &Args,
                                 const std::vector<std::string> &ArgKinds) {
  assert(Args.size() == ArgKinds.size() && "one kind per kernel argument");
  State.addOperand(Handler);
  State.addAttribute("kernel", Kernel);
  State.addOperand(GlobalRange);
  if (LocalRange) {
    State.addOperand(LocalRange);
    State.addAttribute("has_local_range",
                       UnitAttr::get(Builder.getContext()));
  }
  State.addOperands(Args);
  std::vector<Attribute> Kinds;
  Kinds.reserve(ArgKinds.size());
  for (const std::string &Kind : ArgKinds)
    Kinds.push_back(StringAttr::get(Builder.getContext(), Kind));
  State.addAttribute("arg_kinds",
                     ArrayAttr::get(Builder.getContext(), std::move(Kinds)));
}

LogicalResult HostScheduleKernelOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() < 2 || Op->getNumResults() != 0)
    return failure();
  if (!Op->getAttrOfType<SymbolRefAttr>("kernel"))
    return failure();
  auto Kinds = Op->getAttrOfType<ArrayAttr>("arg_kinds");
  if (!Kinds)
    return failure();
  unsigned NumRangeOperands = Op->hasAttr("has_local_range") ? 3 : 2;
  return success(Op->getNumOperands() - NumRangeOperands == Kinds.size());
}

//===----------------------------------------------------------------------===//
// Registration
//===----------------------------------------------------------------------===//

void sycl::registerSYCLDialect(MLIRContext &Context) {
  auto *SYCLDialect =
      Context.registerDialect(std::make_unique<Dialect>("sycl", &Context));
  Context.registerTypeParser("sycl", &parseSYCLType);

  registerOp<ConstructorOp>(Context, SYCLDialect,
                            {0, &ConstructorOp::verifyOp, nullptr,
                             &ConstructorOp::getEffects});

  // Getter ops: read-only. Work-item id queries are non-uniformity sources
  // (paper §V-C); range/group queries are uniform across the work-group.
  uint64_t NonUniform = traits(OpTrait::NonUniformSource);
#define SMLIR_REGISTER_GETTER(ClassName, Traits)                              \
  registerOp<ClassName>(Context, SYCLDialect,                                 \
                        {Traits, nullptr, nullptr, &ClassName::getEffects});
  SMLIR_REGISTER_GETTER(IDGetOp, 0)
  SMLIR_REGISTER_GETTER(RangeGetOp, 0)
  SMLIR_REGISTER_GETTER(ItemGetIDOp, NonUniform)
  SMLIR_REGISTER_GETTER(ItemGetRangeOp, 0)
  SMLIR_REGISTER_GETTER(NDItemGetGlobalIDOp, NonUniform)
  SMLIR_REGISTER_GETTER(NDItemGetLocalIDOp, NonUniform)
  SMLIR_REGISTER_GETTER(NDItemGetGroupIDOp, 0)
  SMLIR_REGISTER_GETTER(NDItemGetGlobalRangeOp, 0)
  SMLIR_REGISTER_GETTER(NDItemGetLocalRangeOp, 0)
  SMLIR_REGISTER_GETTER(NDItemGetGroupRangeOp, 0)
  SMLIR_REGISTER_GETTER(AccessorGetRangeOp, 0)
  SMLIR_REGISTER_GETTER(AccessorGetOffsetOp, 0)
#undef SMLIR_REGISTER_GETTER

  registerOp<AccessorSubscriptOp>(Context, SYCLDialect,
                                  {0, &AccessorSubscriptOp::verifyOp,
                                   nullptr,
                                   &AccessorSubscriptOp::getEffects});
  registerOp<AccessorGetPointerOp>(Context, SYCLDialect,
                                   {0, nullptr, nullptr,
                                    &AccessorGetPointerOp::getEffects});
  registerOp<GroupBarrierOp>(Context, SYCLDialect,
                             {0, nullptr, nullptr,
                              &GroupBarrierOp::getEffects});
  registerOp<AccessorsDisjointOp>(Context, SYCLDialect,
                                  {0, nullptr, nullptr,
                                   &AccessorsDisjointOp::getEffects});

  registerOp<HostConstructorOp>(Context, SYCLDialect,
                                {0, &HostConstructorOp::verifyOp, nullptr,
                                 &HostConstructorOp::getEffects});
  registerOp<HostScheduleKernelOp>(Context, SYCLDialect,
                                   {0, &HostScheduleKernelOp::verifyOp});
}

//===----------------------------------------------------------------------===//
// LLVM-like dialect
//===----------------------------------------------------------------------===//

using namespace smlir::llvmir;

PtrType PtrType::get(MLIRContext *Context) {
  std::string Key = "!llvm.ptr";
  auto *Storage = Context->getTypeStorage(Key, [&] {
    return std::make_unique<PtrTypeStorage>(Context, Key);
  });
  return PtrType(Storage);
}

bool PtrType::classof(Type Ty) {
  return Ty.getTypeID() == TypeID::get<PtrTypeStorage>();
}

void LLVMAllocaOp::build(OpBuilder &Builder, OperationState &State,
                         Type ObjType) {
  if (ObjType)
    State.addAttribute("objType", TypeAttr::get(ObjType));
  State.addType(PtrType::get(Builder.getContext()));
}

void LLVMAllocaOp::getEffects(Operation *Op,
                              std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Allocate, Op->getResult(0)});
}

void LLVMCallOp::build(OpBuilder &Builder, OperationState &State,
                       std::string_view Callee,
                       const std::vector<Value> &Operands,
                       const std::vector<Type> &Results) {
  State.addAttribute("callee",
                     SymbolRefAttr::get(Builder.getContext(), Callee));
  State.addOperands(Operands);
  State.addTypes(Results);
}

void LLVMLoadOp::getEffects(Operation *Op,
                            std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Read, Op->getOperand(0)});
}

void LLVMStoreOp::getEffects(Operation *Op,
                             std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Write, Op->getOperand(1)});
}

static Type parseLLVMType(MLIRContext *Context, std::string_view Text) {
  if (Text == "llvm.ptr")
    return PtrType::get(Context);
  return Type();
}

void llvmir::registerLLVMDialect(MLIRContext &Context) {
  auto *LLVMDialect =
      Context.registerDialect(std::make_unique<Dialect>("llvm", &Context));
  Context.registerTypeParser("llvm", &parseLLVMType);

  registerOp<LLVMAllocaOp>(Context, LLVMDialect,
                           {0, nullptr, nullptr, &LLVMAllocaOp::getEffects});
  registerOp<LLVMCallOp>(Context, LLVMDialect, {});
  registerOp<LLVMLoadOp>(Context, LLVMDialect,
                         {0, nullptr, nullptr, &LLVMLoadOp::getEffects});
  registerOp<LLVMStoreOp>(Context, LLVMDialect,
                          {0, nullptr, nullptr, &LLVMStoreOp::getEffects});
}
