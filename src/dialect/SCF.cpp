//===- SCF.cpp - Structured control flow and affine dialects ----------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dialect/SCF.h"

using namespace smlir;

//===----------------------------------------------------------------------===//
// Shared loop helpers
//===----------------------------------------------------------------------===//

/// Creates the loop body block (induction variable + iter args) if absent.
static Block *ensureLoopBody(Operation *Op) {
  Region &R = Op->getRegion(0);
  if (!R.empty())
    return &R.front();
  Block &Body = R.emplaceBlock();
  Body.addArgument(IndexType::get(Op->getContext()));
  for (unsigned I = 3, E = Op->getNumOperands(); I != E; ++I)
    Body.addArgument(Op->getOperand(I).getType());
  return &Body;
}

/// Shared verifier for scf.for / affine.for.
static LogicalResult verifyLoopOp(Operation *Op, const char *YieldName) {
  if (Op->getNumOperands() < 3 || Op->getNumRegions() != 1)
    return failure();
  for (unsigned I = 0; I < 3; ++I)
    if (!Op->getOperand(I).getType().isIntOrIndex())
      return failure();
  unsigned NumIterArgs = Op->getNumOperands() - 3;
  if (Op->getNumResults() != NumIterArgs)
    return failure();
  for (unsigned I = 0; I != NumIterArgs; ++I)
    if (Op->getOperand(3 + I).getType() != Op->getResultType(I))
      return failure();
  Region &R = Op->getRegion(0);
  if (R.empty())
    return failure(); // A loop must have a body.
  Block &Body = R.front();
  if (Body.getNumArguments() != 1 + NumIterArgs)
    return failure();
  if (!Body.getArgument(0).getType().isIntOrIndex())
    return failure();
  Operation *Terminator = Body.getTerminator();
  if (!Terminator || Terminator->getName().getStringRef() != YieldName)
    return failure();
  if (Terminator->getNumOperands() != NumIterArgs)
    return failure();
  for (unsigned I = 0; I != NumIterArgs; ++I)
    if (Terminator->getOperand(I).getType() != Op->getResultType(I))
      return failure();
  return success();
}

static void buildLoopOp(OperationState &State, Value LowerBound,
                        Value UpperBound, Value Step,
                        const std::vector<Value> &IterArgs) {
  State.addOperands({LowerBound, UpperBound, Step});
  State.addOperands(IterArgs);
  for (Value Arg : IterArgs)
    State.addType(Arg.getType());
  State.addRegion();
}

//===----------------------------------------------------------------------===//
// scf dialect
//===----------------------------------------------------------------------===//

LogicalResult scf::IfOp::verifyOp(Operation *Op) {
  if (Op->getNumOperands() != 1 || Op->getNumRegions() != 2)
    return failure();
  if (!Op->getOperand(0).getType().isInteger(1))
    return failure();
  // Results require both branches to yield matching values.
  for (unsigned RI = 0; RI < 2; ++RI) {
    Region &R = Op->getRegion(RI);
    if (R.empty()) {
      if (Op->getNumResults() > 0)
        return failure();
      continue;
    }
    Operation *Terminator = R.front().getTerminator();
    if (!Terminator ||
        Terminator->getName().getStringRef() != YieldOp::getOperationName())
      return failure();
    if (Terminator->getNumOperands() != Op->getNumResults())
      return failure();
    for (unsigned I = 0, E = Op->getNumResults(); I != E; ++I)
      if (Terminator->getOperand(I).getType() != Op->getResultType(I))
        return failure();
  }
  return success();
}

void scf::ForOp::build(OpBuilder &Builder, OperationState &State,
                       Value LowerBound, Value UpperBound, Value Step,
                       const std::vector<Value> &IterArgs) {
  buildLoopOp(State, LowerBound, UpperBound, Step, IterArgs);
}

Block *scf::ForOp::getBody() const { return ensureLoopBody(TheOp); }

LogicalResult scf::ForOp::verifyOp(Operation *Op) {
  return verifyLoopOp(Op, YieldOp::getOperationName());
}

void scf::registerSCFDialect(MLIRContext &Context) {
  auto *SCFDialect =
      Context.registerDialect(std::make_unique<Dialect>("scf", &Context));
  registerOp<scf::YieldOp>(Context, SCFDialect,
                           {traits(OpTrait::IsTerminator)});
  registerOp<scf::IfOp>(Context, SCFDialect,
                        {traits(OpTrait::RecursiveMemoryEffects),
                         &scf::IfOp::verifyOp});
  registerOp<scf::ForOp>(Context, SCFDialect,
                         {traits(OpTrait::RecursiveMemoryEffects),
                          &scf::ForOp::verifyOp});
}

//===----------------------------------------------------------------------===//
// affine dialect
//===----------------------------------------------------------------------===//

void affine::AffineForOp::build(OpBuilder &Builder, OperationState &State,
                                Value LowerBound, Value UpperBound,
                                Value Step,
                                const std::vector<Value> &IterArgs) {
  buildLoopOp(State, LowerBound, UpperBound, Step, IterArgs);
}

Block *affine::AffineForOp::getBody() const { return ensureLoopBody(TheOp); }

LogicalResult affine::AffineForOp::verifyOp(Operation *Op) {
  return verifyLoopOp(Op, AffineYieldOp::getOperationName());
}

void affine::AffineLoadOp::getEffects(Operation *Op,
                                      std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Read, Op->getOperand(0)});
}

void affine::AffineStoreOp::getEffects(Operation *Op,
                                       std::vector<MemoryEffect> &Effects) {
  Effects.push_back({EffectKind::Write, Op->getOperand(1)});
}

void affine::registerAffineDialect(MLIRContext &Context) {
  auto *AffineDialect =
      Context.registerDialect(std::make_unique<Dialect>("affine", &Context));
  registerOp<affine::AffineYieldOp>(Context, AffineDialect,
                                    {traits(OpTrait::IsTerminator)});
  registerOp<affine::AffineForOp>(Context, AffineDialect,
                                  {traits(OpTrait::RecursiveMemoryEffects),
                                   &affine::AffineForOp::verifyOp});
  registerOp<affine::AffineLoadOp>(Context, AffineDialect,
                                   {0, nullptr, nullptr,
                                    &affine::AffineLoadOp::getEffects});
  registerOp<affine::AffineStoreOp>(Context, AffineDialect,
                                    {0, nullptr, nullptr,
                                     &affine::AffineStoreOp::getEffects});
}

//===----------------------------------------------------------------------===//
// LoopLikeOp
//===----------------------------------------------------------------------===//

Block *smlir::LoopLikeOp::getBody() const { return ensureLoopBody(TheOp); }

bool smlir::LoopLikeOp::isDefinedOutsideOfLoop(Value Val) const {
  Block *DefBlock = Val.getParentBlock();
  for (Block *B = DefBlock; B; ) {
    Operation *Parent = B->getParentOp();
    if (Parent == TheOp)
      return false;
    B = Parent ? Parent->getBlock() : nullptr;
  }
  return true;
}
