//===- GPU.cpp - Minimal GPU dialect ----------------------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dialect/GPU.h"

using namespace smlir;
using namespace smlir::gpu;

void BarrierOp::getEffects(Operation *Op,
                           std::vector<MemoryEffect> &Effects) {
  (void)Op;
  // A barrier orders all memory accesses of the work-group: model as a
  // read/write on an unspecified resource so nothing is moved across it.
  Effects.push_back({EffectKind::Read, Value()});
  Effects.push_back({EffectKind::Write, Value()});
}

void gpu::registerGPUDialect(MLIRContext &Context) {
  auto *GPUDialect =
      Context.registerDialect(std::make_unique<Dialect>("gpu", &Context));
  registerOp<BarrierOp>(Context, GPUDialect,
                        {0, nullptr, nullptr, &BarrierOp::getEffects});
}
