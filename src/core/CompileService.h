//===- CompileService.h - Process-wide two-tier compile cache ---*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-global compilation service behind `Compiler::compileFor`:
/// every compilation request in the process, from any `Compiler` instance
/// and any `MLIRContext`, funnels through one content-addressed cache
/// with two tiers.
///
///  - **Memory tier**: a size-bounded LRU of compilation *artifacts*
///    (the optimized module's printed IR plus its launch metadata),
///    keyed by (target, pipeline, printed source IR) — no context in the
///    key, so textually identical programs share one artifact
///    process-wide. Each artifact carries the `CompiledModule`s already
///    materialized from it, per context: a requester in the same context
///    gets the identical `shared_ptr` (a memory hit); a requester in a
///    different context re-parses the artifact's IR into its own context
///    (a rematerialization) — modules never cross context boundaries, so
///    a context dying can never dangle another context's executable.
///    A destruction observer on every context the service has seen drops
///    that context's materialized modules the moment it dies.
///
///  - **Disk tier** (`$SMLIR_CACHE_DIR`, off when unset): artifacts are
///    persisted as one file per content hash, with a format version, the
///    full key echoed for exact match, a payload checksum, and the
///    per-kernel serialized bytecode (exec/Bytecode.h serialize). A warm
///    process re-parses and re-verifies the stored IR instead of running
///    the pass pipeline; any version or hash mismatch, truncation or
///    checksum failure silently demotes to a full compile (counted in
///    DiskInvalid). Writes are atomic (temp file + rename), so
///    concurrent processes sharing one cache directory never observe a
///    torn entry.
///
/// In-flight compilations deduplicate process-wide: the first requester
/// of a key compiles, every concurrent requester of the same key waits
/// for that one result — one pipeline run per key no matter how many
/// compilers race. Distinct keys compile genuinely concurrently, in the
/// same context too (the old per-context pipeline serialization is gone;
/// MaxConcurrentCompiles in the stats proves the overlap).
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_CORE_COMPILESERVICE_H
#define SMLIR_CORE_COMPILESERVICE_H

#include "core/Compiler.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace smlir {
namespace core {

/// How one compileThrough request was served (most-shared to least).
enum class CompileOutcome {
  /// The requesting context already had the materialized module.
  MemoryHit,
  /// Another context's compile left an artifact; re-parsed into the
  /// requesting context without running the pipeline.
  Rematerialized,
  /// Loaded from the disk tier: parsed + verified from the stored IR,
  /// bytecode seeded from the stored blobs.
  DiskHit,
  /// Nothing cached anywhere: this request ran the pass pipeline.
  Miss,
  /// The pipeline failed (failures are never cached).
  Failed,
};

std::string_view stringifyOutcome(CompileOutcome Outcome);

/// Bump when the cached artifact layout, the printed-IR format, or
/// anything else that makes old disk entries meaningless changes. Old
/// entries then read as version mismatches and recompile cleanly.
inline constexpr uint32_t kCompileCacheFormatVersion = 1;

class CompileService {
public:
  /// Per-tier counters; a getStats() snapshot is internally consistent.
  struct Stats {
    uint64_t MemoryHits = 0;      ///< Same-context shared_ptr handouts.
    uint64_t Rematerialized = 0;  ///< Cross-context re-parses.
    uint64_t DiskHits = 0;        ///< Entries loaded from $SMLIR_CACHE_DIR.
    uint64_t DiskStores = 0;      ///< Entries persisted to disk.
    uint64_t DiskInvalid = 0;     ///< Corrupt/stale disk entries demoted.
    uint64_t Misses = 0;          ///< Full pipeline runs.
    uint64_t Evictions = 0;       ///< LRU capacity evictions.
    uint64_t DeadContextEvictions = 0; ///< Modules dropped at context death.
    uint64_t InFlightWaits = 0;   ///< Requests that waited on another's run.
    uint64_t MaxConcurrentCompiles = 0; ///< High-water mark of pipeline runs.
    uint64_t MemoryEntries = 0;   ///< Current memory-tier size.
  };

  /// Runs the full pass pipeline for a key nobody has compiled: returns
  /// the compiled module, or null with \p Error set. Supplied by
  /// Compiler::compileFor; invoked outside the service lock, at most
  /// once per key process-wide at a time.
  using CompileFn =
      std::function<std::shared_ptr<const CompiledModule>(std::string &Error)>;

  /// The process-wide service.
  static CompileService &get();

  /// Serves one compilation request for (\p Target, \p Pipeline,
  /// \p SourceIR) materialized into \p Ctx, trying tiers most-shared
  /// first: same-context module, cross-context artifact, disk entry,
  /// then \p RunPipeline. \p Outcome (optional) reports which tier
  /// served it. Returns null with \p ErrorMessage on pipeline failure.
  std::shared_ptr<const CompiledModule>
  compileThrough(MLIRContext *Ctx, std::string SourceIR,
                 std::string_view Target, std::string_view Pipeline,
                 const CompileFn &RunPipeline,
                 CompileOutcome *Outcome = nullptr,
                 std::string *ErrorMessage = nullptr);

  Stats getStats() const;

  /// Memory-tier capacity in artifacts (min 1). Initialized from
  /// $SMLIR_CACHE_MEM_ENTRIES (default 64).
  void setMemoryCapacity(size_t Entries);

  /// Points the disk tier at \p Dir (created on first store); empty
  /// disables it. Initialized from $SMLIR_CACHE_DIR.
  void setDiskCacheDir(std::string Dir);
  std::string getDiskCacheDir() const;

  /// Drops every memory-tier entry (artifacts and materialized modules;
  /// outstanding executables keep theirs alive through their
  /// shared_ptr). The disk tier and the counters are untouched — this is
  /// how one process simulates a cold restart against a warm disk cache.
  void clearMemoryTier();

  /// Returns the service to its freshly-constructed state: memory tier
  /// cleared, counters zeroed, capacity and disk directory re-read from
  /// the environment. Tests asserting exact hit/miss counts call this
  /// first so earlier tests in the binary can't pre-warm their keys.
  void resetForTesting();

  /// Invoked by the MLIRContext destruction observer: drops every module
  /// materialized in \p Ctx (artifacts stay — they are context-free).
  void onContextDestroyed(MLIRContext *Ctx);

private:
  CompileService();

  /// A context-free compilation result: everything needed to rebuild a
  /// CompiledModule in any context, and the unit the disk tier persists.
  struct Artifact {
    std::string OptimizedIR;
    std::map<std::string, std::set<unsigned>> DeadArgs;
    std::string Report;
    bool Lowered = false;
    /// Translation configuration of the bytecode blobs below; seeding is
    /// skipped when the loading process runs different defaults (lazy
    /// retranslation covers it).
    bool BcFusion = false;
    bool BcInbounds = false;
    /// Kernel name -> bc::serialize blob (only populated when the disk
    /// tier is active; the memory tier retranslates lazily).
    std::vector<std::pair<std::string, std::string>> Bytecode;
  };

  struct Entry {
    std::shared_ptr<const Artifact> Art;
    /// Modules already parsed from Art, one per living context.
    std::map<MLIRContext *, std::shared_ptr<const CompiledModule>> Modules;
    std::list<std::string>::iterator LRUPos;
  };

  /// One compilation in progress (per key, process-wide).
  struct InFlight {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    bool Success = false;
    std::string Error;
  };

  void loadConfigFromEnv();
  /// Registers the dead-context observer for \p Ctx once. Lock held.
  void watchContextLocked(MLIRContext *Ctx);
  /// Inserts/refreshes \p Key at the front of the LRU. Lock held.
  Entry &touchEntryLocked(const std::string &Key);
  /// Evicts least-recently-used entries down to capacity. Lock held.
  void enforceCapacityLocked();

  /// Builds an Artifact from a freshly compiled module (prints the IR;
  /// when \p WithBytecode, translates and serializes every kernel).
  static std::shared_ptr<const Artifact>
  buildArtifact(const CompiledModule &Compiled, bool WithBytecode);
  /// Parses \p Art into \p Ctx and rebuilds a CompiledModule (verifying
  /// the parsed IR); null if the stored IR does not parse/verify.
  static std::shared_ptr<const CompiledModule>
  materialize(const Artifact &Art, MLIRContext *Ctx);

  static std::string diskPathFor(const std::string &Dir,
                                 const std::string &Key);
  /// Reads + fully validates the disk entry for \p Key. Returns null and
  /// sets \p Invalid when a file existed but was corrupt/stale/mismatched
  /// (no file at all is a plain miss, not an invalid entry).
  static std::shared_ptr<const Artifact>
  loadDiskEntry(const std::string &Path, const std::string &Key,
                bool &Invalid);
  static void storeDiskEntry(const std::string &Path, const std::string &Key,
                             const Artifact &Art);

  mutable std::mutex M;
  std::map<std::string, Entry> Entries;
  /// Front = most recently used.
  std::list<std::string> LRU;
  std::map<std::string, std::shared_ptr<InFlight>> InFlightMap;
  std::set<MLIRContext *> WatchedContexts;
  size_t Capacity = 64;
  std::string CacheDir;
  Stats S;
  uint64_t ActiveCompiles = 0;
};

} // namespace core
} // namespace smlir

#endif // SMLIR_CORE_COMPILESERVICE_H
