//===- CompileService.cpp - Process-wide two-tier compile cache ----------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/CompileService.h"

#include "dialect/Builtin.h"
#include "ir/Block.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace smlir;
using namespace smlir::core;

std::string_view core::stringifyOutcome(CompileOutcome Outcome) {
  switch (Outcome) {
  case CompileOutcome::MemoryHit:
    return "memory-hit";
  case CompileOutcome::Rematerialized:
    return "rematerialized";
  case CompileOutcome::DiskHit:
    return "disk-hit";
  case CompileOutcome::Miss:
    return "miss";
  case CompileOutcome::Failed:
    return "failed";
  }
  return "";
}

//===----------------------------------------------------------------------===//
// Binary helpers (disk-entry encoding)
//===----------------------------------------------------------------------===//

namespace {

uint64_t fnv1a(std::string_view Bytes) {
  uint64_t Hash = 1469598103934665603ull;
  for (char C : Bytes) {
    Hash ^= static_cast<uint8_t>(C);
    Hash *= 1099511628211ull;
  }
  return Hash;
}

/// The content hash naming a disk entry: the format version is mixed in
/// so a version bump changes every filename and old files simply stop
/// being found (in addition to the in-file version check).
uint64_t hashKey(const std::string &Key) {
  std::string Tagged = "smlirc-v";
  Tagged += std::to_string(kCompileCacheFormatVersion);
  Tagged += ':';
  Tagged += Key;
  return fnv1a(Tagged);
}

struct Writer {
  std::string Out;
  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      u8(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      u8(static_cast<uint8_t>(V >> (8 * I)));
  }
  void str(std::string_view S) {
    u64(S.size());
    Out.append(S);
  }
};

struct Reader {
  std::string_view In;
  size_t Pos = 0;
  bool Bad = false;

  size_t remaining() const { return Bad ? 0 : In.size() - Pos; }
  bool ok() const { return !Bad; }
  uint8_t u8() {
    if (remaining() < 1) {
      Bad = true;
      return 0;
    }
    return static_cast<uint8_t>(In[Pos++]);
  }
  uint32_t u32() {
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(u8()) << (8 * I);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(u8()) << (8 * I);
    return V;
  }
  std::string str() {
    uint64_t Len = u64();
    if (remaining() < Len) {
      Bad = true;
      return {};
    }
    std::string S(In.substr(Pos, Len));
    Pos += Len;
    return S;
  }
  /// Count whose elements (at least \p ElemSize bytes each) must fit in
  /// the remaining input — a corrupt count must not drive allocation.
  uint64_t count(size_t ElemSize) {
    uint64_t N = u64();
    if (ElemSize != 0 && N > remaining() / ElemSize) {
      Bad = true;
      return 0;
    }
    return N;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

CompileService &CompileService::get() {
  static CompileService *Service = new CompileService();
  return *Service;
}

CompileService::CompileService() {
  loadConfigFromEnv();
  // The service is the canonical store for its counters; the metrics
  // registry pulls a coherent snapshot (one lock acquisition) on demand
  // instead of mirroring each increment. The singleton never dies, so
  // the collector is never unregistered.
  telemetry::registerCollector([this](telemetry::MetricSink &Sink) {
    Stats Snapshot = getStats();
    Sink.add("compile_service.memory_hits", Snapshot.MemoryHits);
    Sink.add("compile_service.rematerialized", Snapshot.Rematerialized);
    Sink.add("compile_service.disk_hits", Snapshot.DiskHits);
    Sink.add("compile_service.disk_stores", Snapshot.DiskStores);
    Sink.add("compile_service.disk_invalid", Snapshot.DiskInvalid);
    Sink.add("compile_service.misses", Snapshot.Misses);
    Sink.add("compile_service.evictions", Snapshot.Evictions);
    Sink.add("compile_service.dead_context_evictions",
             Snapshot.DeadContextEvictions);
    Sink.add("compile_service.in_flight_waits", Snapshot.InFlightWaits);
    Sink.add("compile_service.max_concurrent_compiles",
             Snapshot.MaxConcurrentCompiles);
    Sink.add("compile_service.memory_entries", Snapshot.MemoryEntries);
  });
}

void CompileService::loadConfigFromEnv() {
  Capacity = 64;
  if (const char *Env = std::getenv("SMLIR_CACHE_MEM_ENTRIES"))
    if (*Env) {
      char *End = nullptr;
      long Value = std::strtol(Env, &End, 10);
      if (End && *End == '\0' && Value >= 1)
        Capacity = static_cast<size_t>(Value);
    }
  CacheDir.clear();
  if (const char *Env = std::getenv("SMLIR_CACHE_DIR"))
    CacheDir = Env;
}

void CompileService::watchContextLocked(MLIRContext *Ctx) {
  if (!WatchedContexts.insert(Ctx).second)
    return;
  Ctx->addDestructionObserver(
      [](MLIRContext *Dead) { CompileService::get().onContextDestroyed(Dead); });
}

CompileService::Entry &
CompileService::touchEntryLocked(const std::string &Key) {
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    LRU.push_front(Key);
    It = Entries.emplace(Key, Entry{}).first;
    It->second.LRUPos = LRU.begin();
    return It->second;
  }
  LRU.splice(LRU.begin(), LRU, It->second.LRUPos);
  return It->second;
}

void CompileService::enforceCapacityLocked() {
  while (Entries.size() > Capacity) {
    // The back of the LRU is never the entry just touched (size >
    // capacity >= 1 implies at least two entries). Dropping the entry
    // releases the artifact and the service's module references;
    // executables holding the module through their shared_ptr are
    // unaffected.
    Entries.erase(LRU.back());
    LRU.pop_back();
    ++S.Evictions;
  }
}

void CompileService::onContextDestroyed(MLIRContext *Ctx) {
  std::lock_guard<std::mutex> Lock(M);
  WatchedContexts.erase(Ctx);
  for (auto &KV : Entries)
    S.DeadContextEvictions += KV.second.Modules.erase(Ctx);
}

CompileService::Stats CompileService::getStats() const {
  std::lock_guard<std::mutex> Lock(M);
  Stats Snapshot = S;
  Snapshot.MemoryEntries = Entries.size();
  return Snapshot;
}

void CompileService::setMemoryCapacity(size_t NewCapacity) {
  std::lock_guard<std::mutex> Lock(M);
  Capacity = std::max<size_t>(1, NewCapacity);
  enforceCapacityLocked();
}

void CompileService::setDiskCacheDir(std::string Dir) {
  std::lock_guard<std::mutex> Lock(M);
  CacheDir = std::move(Dir);
}

std::string CompileService::getDiskCacheDir() const {
  std::lock_guard<std::mutex> Lock(M);
  return CacheDir;
}

void CompileService::clearMemoryTier() {
  std::lock_guard<std::mutex> Lock(M);
  Entries.clear();
  LRU.clear();
}

void CompileService::resetForTesting() {
  std::lock_guard<std::mutex> Lock(M);
  Entries.clear();
  LRU.clear();
  S = Stats{};
  // Contexts stay watched: their observers already point here and
  // re-registering on the next request would stack duplicates.
  loadConfigFromEnv();
}

//===----------------------------------------------------------------------===//
// Artifact <-> CompiledModule
//===----------------------------------------------------------------------===//

std::shared_ptr<const CompileService::Artifact>
CompileService::buildArtifact(const CompiledModule &Compiled,
                              bool WithBytecode) {
  auto Art = std::make_shared<Artifact>();
  Art->OptimizedIR = Compiled.Module.get()->str();
  Art->DeadArgs = Compiled.DeadArgs;
  Art->Report = Compiled.Report;
  Art->Lowered = Compiled.Lowered;
  Art->BcFusion = exec::bc::getDefaultFusionEnabled();
  Art->BcInbounds = exec::bc::getDefaultInboundsEnabled();
  if (WithBytecode && Compiled.Lowered) {
    // Translate every kernel now (the translations land in the module's
    // own bytecode cache, so launches reuse them) and persist the
    // successes; untranslatable kernels simply have no blob and a warm
    // process re-attempts them lazily.
    auto Top = ModuleOp::cast(Compiled.Module.get());
    if (auto Kernels = ModuleOp::dyn_cast(Top.lookupSymbol("kernels")))
      for (Operation *Op : *Kernels.getBody()) {
        auto Kernel = FuncOp::dyn_cast(Op);
        if (!Kernel)
          continue;
        std::string Name(Kernel.getName());
        if (const exec::bc::Function *Fn = Compiled.getBytecode(Kernel, Name))
          Art->Bytecode.emplace_back(Name, exec::bc::serialize(*Fn));
      }
  }
  return Art;
}

std::shared_ptr<const CompiledModule>
CompileService::materialize(const Artifact &Art, MLIRContext *Ctx) {
  std::string ParseError;
  OwningOpRef Module = parseSourceString(Ctx, Art.OptimizedIR, &ParseError);
  if (!Module || verify(Module.get()).failed())
    return nullptr;
  auto Compiled = std::make_shared<CompiledModule>();
  Compiled->Module = std::move(Module);
  Compiled->DeadArgs = Art.DeadArgs;
  Compiled->Report = Art.Report;
  Compiled->Lowered = Art.Lowered;
  // Seed the stored bytecode only when this process runs the same
  // translation configuration the blobs were produced under — otherwise
  // lazy retranslation recreates them with the current knobs.
  if (Art.BcFusion == exec::bc::getDefaultFusionEnabled() &&
      Art.BcInbounds == exec::bc::getDefaultInboundsEnabled())
    for (const auto &[Name, Blob] : Art.Bytecode)
      if (std::unique_ptr<exec::bc::Function> Fn = exec::bc::deserialize(Blob))
        Compiled->seedBytecode(Name, std::move(Fn));
  return Compiled;
}

//===----------------------------------------------------------------------===//
// Disk tier
//===----------------------------------------------------------------------===//

std::string CompileService::diskPathFor(const std::string &Dir,
                                        const std::string &Key) {
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(hashKey(Key)));
  return Dir + "/" + Hex + ".smlirc";
}

std::shared_ptr<const CompileService::Artifact>
CompileService::loadDiskEntry(const std::string &Path, const std::string &Key,
                              bool &Invalid) {
  Invalid = false;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return nullptr; // No entry: a plain miss, not corruption.
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Bytes = Buffer.str();

  // Header: magic, format version, key hash, payload checksum, payload
  // size. Validation order matters for the counters: a version bump or
  // bit flip is "invalid" (counted, recompiled); a hash collision whose
  // stored key differs is a plain miss.
  constexpr size_t HeaderSize = 4 + 4 + 8 + 8 + 8;
  Invalid = true;
  if (Bytes.size() < HeaderSize || Bytes.substr(0, 4) != "SMLC")
    return nullptr;
  Reader H{Bytes, 4};
  if (H.u32() != kCompileCacheFormatVersion)
    return nullptr;
  if (H.u64() != hashKey(Key))
    return nullptr;
  uint64_t Checksum = H.u64();
  uint64_t PayloadSize = H.u64();
  if (PayloadSize != Bytes.size() - HeaderSize)
    return nullptr;
  std::string_view Payload(Bytes.data() + HeaderSize, PayloadSize);
  if (fnv1a(Payload) != Checksum)
    return nullptr;

  Reader R{Payload};
  std::string StoredKey = R.str();
  if (R.ok() && StoredKey != Key) {
    Invalid = false; // A different key hashed to this file name.
    return nullptr;
  }
  auto Art = std::make_shared<Artifact>();
  Art->OptimizedIR = R.str();
  Art->Report = R.str();
  Art->Lowered = R.u8() != 0;
  uint64_t NumDead = R.count(16);
  for (uint64_t I = 0; R.ok() && I < NumDead; ++I) {
    std::string Kernel = R.str();
    uint64_t N = R.count(4);
    std::set<unsigned> &Indices = Art->DeadArgs[Kernel];
    for (uint64_t J = 0; R.ok() && J < N; ++J)
      Indices.insert(R.u32());
  }
  Art->BcFusion = R.u8() != 0;
  Art->BcInbounds = R.u8() != 0;
  uint64_t NumBlobs = R.count(16);
  for (uint64_t I = 0; R.ok() && I < NumBlobs; ++I) {
    std::string Name = R.str();
    std::string Blob = R.str();
    Art->Bytecode.emplace_back(std::move(Name), std::move(Blob));
  }
  if (!R.ok() || R.remaining() != 0)
    return nullptr;
  Invalid = false;
  return Art;
}

void CompileService::storeDiskEntry(const std::string &Path,
                                    const std::string &Key,
                                    const Artifact &Art) {
  Writer P;
  P.str(Key);
  P.str(Art.OptimizedIR);
  P.str(Art.Report);
  P.u8(Art.Lowered ? 1 : 0);
  P.u64(Art.DeadArgs.size());
  for (const auto &[Kernel, Indices] : Art.DeadArgs) {
    P.str(Kernel);
    P.u64(Indices.size());
    for (unsigned Index : Indices)
      P.u32(Index);
  }
  P.u8(Art.BcFusion ? 1 : 0);
  P.u8(Art.BcInbounds ? 1 : 0);
  P.u64(Art.Bytecode.size());
  for (const auto &[Name, Blob] : Art.Bytecode) {
    P.str(Name);
    P.str(Blob);
  }

  Writer File;
  File.Out.append("SMLC");
  File.u32(kCompileCacheFormatVersion);
  File.u64(hashKey(Key));
  File.u64(fnv1a(P.Out));
  File.u64(P.Out.size());
  File.Out.append(P.Out);

  // Best-effort and atomic: a full temp file renamed into place, so a
  // concurrent reader (or a second process sharing the directory) sees
  // either no entry or a complete one, never a torn write. IO failures
  // leave the cache cold — the compile already succeeded.
  std::error_code EC;
  std::filesystem::create_directories(
      std::filesystem::path(Path).parent_path(), EC);
  if (EC)
    return;
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return;
    Out.write(File.Out.data(),
              static_cast<std::streamsize>(File.Out.size()));
    if (!Out) {
      Out.close();
      std::filesystem::remove(Tmp, EC);
      return;
    }
  }
  std::filesystem::rename(Tmp, Path, EC);
  if (EC)
    std::filesystem::remove(Tmp, EC);
}

//===----------------------------------------------------------------------===//
// compileThrough
//===----------------------------------------------------------------------===//

std::shared_ptr<const CompiledModule> CompileService::compileThrough(
    MLIRContext *Ctx, std::string SourceIR, std::string_view Target,
    std::string_view Pipeline, const CompileFn &RunPipeline,
    CompileOutcome *Outcome, std::string *ErrorMessage) {
  // One span per request, whichever tier serves it; pipeline and pass
  // spans of a full compile nest inside it (same thread).
  telemetry::Span RequestSpan("compile.request", "compile");
  if (RequestSpan.isActive())
    RequestSpan.arg("target", Target);
  auto SetOutcome = [&](CompileOutcome O) {
    if (RequestSpan.isActive())
      RequestSpan.arg("outcome", stringifyOutcome(O));
    if (Outcome)
      *Outcome = O;
  };

  std::string Key;
  Key.reserve(Target.size() + Pipeline.size() + SourceIR.size() + 2);
  Key.append(Target);
  Key.push_back('\0');
  Key.append(Pipeline);
  Key.push_back('\0');
  Key.append(SourceIR);

  // The retry loop re-enters the lookup after waiting on an in-flight
  // compile (whose published entry then serves this request) or after a
  // rematerialization raced an eviction.
  for (;;) {
    std::shared_ptr<const Artifact> Art;
    std::shared_ptr<InFlight> Flight;
    bool IsOwner = false;
    {
      std::lock_guard<std::mutex> Lock(M);
      watchContextLocked(Ctx);
      if (auto It = Entries.find(Key); It != Entries.end()) {
        Entry &E = touchEntryLocked(Key);
        if (auto MIt = E.Modules.find(Ctx); MIt != E.Modules.end()) {
          ++S.MemoryHits;
          SetOutcome(CompileOutcome::MemoryHit);
          return MIt->second;
        }
        Art = E.Art;
      } else {
        auto &Slot = InFlightMap[Key];
        if (!Slot) {
          Slot = std::make_shared<InFlight>();
          IsOwner = true;
        } else {
          ++S.InFlightWaits;
        }
        Flight = Slot;
      }
    }

    // Cross-context service: parse the artifact into this context
    // outside the lock (context uniquing is internally locked; two
    // requesters racing here insert-if-absent below and one copy wins).
    if (Art) {
      std::shared_ptr<const CompiledModule> Module = materialize(*Art, Ctx);
      std::lock_guard<std::mutex> Lock(M);
      auto It = Entries.find(Key);
      if (Module) {
        if (It != Entries.end()) {
          Module = It->second.Modules.emplace(Ctx, Module).first->second;
        } else {
          // Evicted while parsing: re-insert, the artifact is valid.
          Entry &E = touchEntryLocked(Key);
          E.Art = Art;
          E.Modules.emplace(Ctx, Module);
          enforceCapacityLocked();
        }
        ++S.Rematerialized;
        SetOutcome(CompileOutcome::Rematerialized);
        return Module;
      }
      // The stored IR failed to parse/verify in this context (a context
      // with different dialects registered, or a poisoned artifact):
      // drop the entry and recompile from scratch.
      if (It != Entries.end()) {
        LRU.erase(It->second.LRUPos);
        Entries.erase(It);
      }
      continue;
    }

    if (!IsOwner) {
      {
        std::unique_lock<std::mutex> FlightLock(Flight->M);
        Flight->CV.wait(FlightLock, [&] { return Flight->Done; });
        if (!Flight->Success) {
          if (ErrorMessage)
            *ErrorMessage = Flight->Error;
          SetOutcome(CompileOutcome::Failed);
          return nullptr;
        }
      }
      continue; // The owner published the entry; the re-lookup serves it.
    }

    // Owner path: this request resolves the key for the whole process.
    auto PublishFlight = [&](bool Success, std::string Error) {
      {
        std::lock_guard<std::mutex> Lock(M);
        InFlightMap.erase(Key);
      }
      {
        std::lock_guard<std::mutex> FlightLock(Flight->M);
        Flight->Done = true;
        Flight->Success = Success;
        Flight->Error = std::move(Error);
      }
      Flight->CV.notify_all();
    };

    std::string Dir;
    {
      std::lock_guard<std::mutex> Lock(M);
      Dir = CacheDir;
    }

    // Disk probe: a valid entry replaces the pipeline run with a parse +
    // verify; anything wrong with the file demotes silently.
    if (!Dir.empty()) {
      bool Invalid = false;
      std::shared_ptr<const Artifact> DiskArt =
          loadDiskEntry(diskPathFor(Dir, Key), Key, Invalid);
      std::shared_ptr<const CompiledModule> Module;
      if (DiskArt) {
        Module = materialize(*DiskArt, Ctx);
        if (!Module)
          Invalid = true; // Stored IR no longer parses in this build.
      }
      if (Invalid) {
        std::lock_guard<std::mutex> Lock(M);
        ++S.DiskInvalid;
      }
      if (Module) {
        {
          std::lock_guard<std::mutex> Lock(M);
          Entry &E = touchEntryLocked(Key);
          E.Art = DiskArt;
          E.Modules.emplace(Ctx, Module);
          ++S.DiskHits;
          enforceCapacityLocked();
        }
        PublishFlight(true, {});
        SetOutcome(CompileOutcome::DiskHit);
        return Module;
      }
    }

    // Full compile. The concurrency high-water mark is the observable
    // proof that independent keys overlap (including in one context —
    // the old whole-context pipeline serialization is gone).
    {
      std::lock_guard<std::mutex> Lock(M);
      ++ActiveCompiles;
      S.MaxConcurrentCompiles =
          std::max(S.MaxConcurrentCompiles, ActiveCompiles);
    }
    std::string Error;
    std::shared_ptr<const CompiledModule> Result = RunPipeline(Error);
    {
      std::lock_guard<std::mutex> Lock(M);
      --ActiveCompiles;
    }

    if (!Result) {
      PublishFlight(false, Error);
      if (ErrorMessage)
        *ErrorMessage = Error;
      SetOutcome(CompileOutcome::Failed);
      return nullptr;
    }

    std::shared_ptr<const Artifact> NewArt =
        buildArtifact(*Result, /*WithBytecode=*/!Dir.empty());
    {
      std::lock_guard<std::mutex> Lock(M);
      Entry &E = touchEntryLocked(Key);
      E.Art = NewArt;
      E.Modules.emplace(Ctx, Result);
      ++S.Misses;
      enforceCapacityLocked();
    }
    if (!Dir.empty()) {
      storeDiskEntry(diskPathFor(Dir, Key), Key, *NewArt);
      std::lock_guard<std::mutex> Lock(M);
      ++S.DiskStores;
    }
    PublishFlight(true, {});
    SetOutcome(CompileOutcome::Miss);
    return Result;
  }
}
