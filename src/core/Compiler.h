//===- Compiler.h - SYCL compiler driver (paper Fig. 1) ---------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler driver implementing the three compilation flows compared
/// in the paper's evaluation (§VIII):
///  - DPCPP: the SMCP baseline — device code compiled in isolation from
///    the host (dotted path in Fig. 1), standard optimizations only.
///  - SYCLMLIR: the paper's contribution — joint host+device module, host
///    raising, host-device constant propagation, SYCL-aware device
///    optimizations and dead argument elimination (dashed path in Fig. 1).
///  - AdaptiveCpp: the SSCP flow — kernels JIT-compiled at first launch
///    with runtime information available (host-derived constants), but
///    without the SYCL-dialect device optimizations; launch-time
///    compilation is billed on the first launch and cached within a run.
///
/// Compilation targets a backend from the exec::TargetRegistry
/// (`Compiler::compileFor`): the final pipeline is flow × target × kernel
/// form — the target's pipeline suffix selects the kernel form it
/// executes (high-level SYCL for `virtual-gpu`, lowered scf/memref for
/// `virtual-cpu`) — and optimized modules are cached process-wide by the
/// CompileService (content hash of printed IR + target + pipeline, plus
/// an optional disk tier), so recompiling one SourceProgram for the same
/// target is a table lookup from any Compiler or context.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_CORE_COMPILER_H
#define SMLIR_CORE_COMPILER_H

#include "exec/Bytecode.h"
#include "exec/TargetRegistry.h"
#include "frontend/SourceProgram.h"
#include "ir/Pass.h"
#include "runtime/Runtime.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

namespace smlir {
namespace core {

/// How the process-wide CompileService served a request (defined in
/// core/CompileService.h).
enum class CompileOutcome;

enum class CompilerFlow { DPCPP, SYCLMLIR, AdaptiveCpp };

std::string_view stringifyFlow(CompilerFlow Flow);

/// Compiler configuration, including per-optimization ablation switches
/// (active in the SYCLMLIR flow).
struct CompilerOptions {
  CompilerFlow Flow = CompilerFlow::SYCLMLIR;
  bool EnableLICM = true;
  bool EnableDetectReduction = true;
  bool EnableLoopInternalization = true;
  bool EnableHostDeviceProp = true;
  bool EnableDAE = true;
  /// Appends the dialect-conversion lowering stage (convert-sycl-to-scf +
  /// cleanup) to the selected flow's pipeline — any flow, regardless of
  /// the target's kernel-form preference: kernels leave the pipeline with
  /// zero `sycl.*` operations, executing through the lowered device ABI.
  /// Targets whose preferred form is LoweredSCF get the same stage
  /// automatically via their pipeline suffix (never stacked twice); the
  /// switch remains for pipeline experiments on high-level targets.
  bool LowerToLoops = false;
  bool VerifyPasses = true;
  /// Simulated JIT cost per kernel operation (AdaptiveCpp flow).
  double JITCostPerOp = 400.0;
  /// When non-empty, compiled with exactly this textual pass pipeline
  /// instead of the pipeline derived from Flow, the switches above and
  /// the target's suffix (see ir/PassRegistry.h for the grammar).
  /// Ablation studies and pipeline experiments are string edits, not
  /// recompiles.
  std::string PipelineOverride;
};

/// An optimized joint module plus the launch metadata derived from it.
/// Shared (immutable) between every Executable compiled from the same
/// (program, target, pipeline) cache key.
struct CompiledModule {
  OwningOpRef Module;
  /// Source-level kernel-argument indices dropped by SYCL DAE, per kernel.
  std::map<std::string, std::set<unsigned>> DeadArgs;
  /// Pass statistics report of the pipeline run that produced Module.
  std::string Report;
  /// Whether the kernels carry the `sycl.lowered` ABI marker (computed
  /// once — the module is immutable after compilation).
  bool Lowered = false;

  /// The kernel's compiled bytecode (exec/Bytecode.h), translated once
  /// per kernel on first request and cached — including negative results,
  /// so an untranslatable kernel pays the attempt only once. Returns null
  /// (setting \p WhyNot) when the kernel is outside the translator's
  /// coverage and the caller must fall back to the tree-walking
  /// interpreter. Thread-safe (launches race through the scheduler).
  const exec::bc::Function *getBytecode(FuncOp Kernel, std::string_view Name,
                                        std::string *WhyNot = nullptr) const;

  /// Pre-populates the bytecode cache with an already-translated (or
  /// deserialized) function — the disk tier of the compile service seeds
  /// modules it loads so a warm process skips retranslation too. First
  /// seed per name wins; called before the module is published/shared.
  void seedBytecode(std::string Name,
                    std::unique_ptr<const exec::bc::Function> Fn);

private:
  mutable std::mutex BytecodeMutex;
  /// Kernel name -> (bytecode or null, failure reason when null).
  mutable std::map<std::string,
                   std::pair<std::unique_ptr<const exec::bc::Function>,
                             std::string>,
                   std::less<>>
      Bytecode;
};

/// A compiled program bound to a target backend: launching resolves the
/// kernel, applies the target's launch conventions (DAE-dropped
/// arguments, work-group size selection, JIT billing) and executes on
/// the device the queue supplies — which lets one process run the same
/// source on several backends side by side.
class Executable : public rt::KernelLauncher {
public:
  Executable(std::shared_ptr<const CompiledModule> Compiled,
             CompilerOptions Options, const exec::TargetBackend &Target);
  ~Executable() override;

  LogicalResult launchKernel(exec::Device &Dev, std::string_view Name,
                             const exec::NDRange &Range,
                             const std::vector<exec::KernelArg> &Args,
                             exec::LaunchStats &Stats,
                             std::string *ErrorMessage) override;

  /// Rejects unknown kernels at submission time and, in the AdaptiveCpp
  /// flow, bills the simulated JIT compilation on the first submission
  /// of each kernel (per executable — cached within a run, paper §IX).
  /// Billing at submission keeps the cost deterministic in submission
  /// order when scheduler workers race on the actual launches.
  LogicalResult prepareLaunch(std::string_view Name, double &ExtraSimTime,
                              std::string *ErrorMessage) override;

  ModuleOp getModule() const { return ModuleOp::cast(Compiled->Module.get()); }
  /// Printed IR of one kernel (for examples and debugging).
  std::string getKernelIR(std::string_view Name) const;
  FuncOp lookupKernel(std::string_view Name) const;

  /// The backend this executable was compiled for.
  const exec::TargetBackend &getTarget() const { return Target; }
  /// The ABI the kernels bind: the target's preferred form (or the
  /// lowered form when CompilerOptions::LowerToLoops forced it).
  exec::KernelForm getKernelForm() const;

  /// The execution tier launchKernel selects for lowered kernels
  /// (initialized from $SMLIR_EXEC_TIER; see exec/Bytecode.h).
  /// High-level SYCL kernels always execute through the tree-walking
  /// interpreter, as do lowered kernels outside the bytecode
  /// translator's coverage.
  exec::ExecutionTier getExecutionTier() const { return Tier; }
  void setExecutionTier(exec::ExecutionTier NewTier) { Tier = NewTier; }

  /// The cached bytecode of \p Name, translating on first request; null
  /// (with \p WhyNot) when the kernel cannot use the bytecode tier.
  const exec::bc::Function *getKernelBytecode(std::string_view Name,
                                              std::string *WhyNot
                                              = nullptr) const;

private:
  std::shared_ptr<const CompiledModule> Compiled;
  CompilerOptions Options;
  const exec::TargetBackend &Target;
  exec::ExecutionTier Tier = exec::getDefaultExecutionTier();
  /// Kernels already JIT-compiled in this run (AdaptiveCpp flow),
  /// guarded so executables shared between queues stay consistent.
  std::mutex JITMutex;
  std::set<std::string> JITCompiled;
};

/// Drives compilation of a SourceProgram under a given configuration.
///
/// `compileFor` is thread-safe and delegates all caching to the
/// process-wide CompileService (core/CompileService.h): compiled modules
/// are shared across every Compiler instance and MLIRContext in the
/// process (content-addressed by target + pipeline + printed source IR),
/// concurrent requests for the same key deduplicate in-flight — exactly
/// one pipeline run per key — and, with $SMLIR_CACHE_DIR set, survive
/// process restarts through the disk tier. Distinct keys compile
/// genuinely concurrently, including within one context.
/// `getLastReport` remains a single-threaded driver convenience.
class Compiler {
public:
  explicit Compiler(CompilerOptions Options);

  /// Compiles \p Program for \p Target: the flow pipeline plus the
  /// target's suffix runs over a clone of the program's module (the
  /// source remains reusable for other configurations and targets), and
  /// the result binds the kernel form the target prefers. Served through
  /// the CompileService cache; \p Outcome (optional) reports which tier
  /// answered (memory, rematerialized, disk, full compile). Returns null
  /// on pipeline failure.
  std::unique_ptr<Executable>
  compileFor(const frontend::SourceProgram &Program,
             const exec::TargetBackend &Target,
             std::string *ErrorMessage = nullptr,
             CompileOutcome *Outcome = nullptr);

  /// Convenience: target by registry mnemonic; empty selects the process
  /// default target ($SMLIR_DEFAULT_TARGET or virtual-gpu). Fails on an
  /// unknown mnemonic.
  std::unique_ptr<Executable>
  compileFor(const frontend::SourceProgram &Program, std::string_view Target,
             std::string *ErrorMessage = nullptr,
             CompileOutcome *Outcome = nullptr);

  /// The textual pass pipeline for \p Options alone: PipelineOverride
  /// when set, otherwise the flow's pipeline with disabled optimizations
  /// omitted. Runnable as-is by `smlir-opt --pass-pipeline=<result>`.
  static std::string getPipeline(const CompilerOptions &Options);

  /// The pipeline compileFor runs for \p Options × \p Target: the flow
  /// pipeline plus the target's suffix (not duplicated when the flow
  /// already ends with it, e.g. under LowerToLoops). PipelineOverride
  /// still wins verbatim. Equals
  /// `smlir-opt --target=<mnemonic> --pass-pipeline=<flow pipeline>`.
  static std::string getPipeline(const CompilerOptions &Options,
                                 const exec::TargetBackend &Target);

  /// Populates \p PM by parsing getPipeline(\p Options) through the pass
  /// registry (exposed for tests and pass-pipeline experiments).
  static LogicalResult buildPipeline(PassManager &PM,
                                     const CompilerOptions &Options,
                                     std::string *ErrorMessage = nullptr);

  /// Pass statistics report of the last compileFor() call (cache hits
  /// replay the cached run's report).
  const std::string &getLastReport() const { return LastReport; }

  /// Compile-cache behavior of this Compiler instance: a Miss is a
  /// compileFor call that ran the pass pipeline itself; a Hit was served
  /// any other way (shared module, rematerialization, disk entry, or
  /// waiting on another thread's in-flight compilation of the same key —
  /// only one compilation ran). Process-wide per-tier counters live in
  /// CompileService::getStats().
  struct CacheStats {
    unsigned Hits = 0;
    unsigned Misses = 0;
  };
  /// A coherent snapshot of the counters: both live in one atomic word
  /// (hits in the high half, misses in the low half), so a single load
  /// observes a state the process actually passed through — two separate
  /// atomics could tear against a concurrent compileFor and report a
  /// hit/miss pair that never coexisted.
  CacheStats getCacheStats() const {
    uint64_t Packed = HitsAndMisses.load(std::memory_order_acquire);
    CacheStats Snapshot;
    Snapshot.Hits = static_cast<unsigned>(Packed >> 32);
    Snapshot.Misses = static_cast<unsigned>(Packed & 0xffffffffu);
    return Snapshot;
  }

  ~Compiler();

private:
  CompilerOptions Options;
  std::string LastReport;
  /// Guards LastReport (the caches live in the CompileService).
  mutable std::mutex ReportMutex;
  /// Hits << 32 | Misses; see getCacheStats.
  std::atomic<uint64_t> HitsAndMisses{0};
  /// Metrics-registry collector handle (compiler.cache.* samples),
  /// released in the destructor.
  uint64_t CollectorHandle = 0;
};

} // namespace core
} // namespace smlir

#endif // SMLIR_CORE_COMPILER_H
