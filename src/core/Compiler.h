//===- Compiler.h - SYCL compiler driver (paper Fig. 1) ---------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler driver implementing the three compilation flows compared
/// in the paper's evaluation (§VIII):
///  - DPCPP: the SMCP baseline — device code compiled in isolation from
///    the host (dotted path in Fig. 1), standard optimizations only.
///  - SYCLMLIR: the paper's contribution — joint host+device module, host
///    raising, host-device constant propagation, SYCL-aware device
///    optimizations and dead argument elimination (dashed path in Fig. 1).
///  - AdaptiveCpp: the SSCP flow — kernels JIT-compiled at first launch
///    with runtime information available (host-derived constants), but
///    without the SYCL-dialect device optimizations; launch-time
///    compilation is billed on the first launch and cached within a run.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_CORE_COMPILER_H
#define SMLIR_CORE_COMPILER_H

#include "exec/Device.h"
#include "frontend/SourceProgram.h"
#include "ir/Pass.h"
#include "runtime/Runtime.h"

#include <map>
#include <memory>
#include <set>
#include <string>

namespace smlir {
namespace core {

enum class CompilerFlow { DPCPP, SYCLMLIR, AdaptiveCpp };

std::string_view stringifyFlow(CompilerFlow Flow);

/// Compiler configuration, including per-optimization ablation switches
/// (active in the SYCLMLIR flow).
struct CompilerOptions {
  CompilerFlow Flow = CompilerFlow::SYCLMLIR;
  bool EnableLICM = true;
  bool EnableDetectReduction = true;
  bool EnableLoopInternalization = true;
  bool EnableHostDeviceProp = true;
  bool EnableDAE = true;
  /// Appends the dialect-conversion lowering stage (convert-sycl-to-scf +
  /// cleanup) to the SYCL-MLIR flow: kernels leave the pipeline with zero
  /// `sycl.*` operations, executing through the lowered device ABI.
  bool LowerToLoops = false;
  bool VerifyPasses = true;
  /// Simulated JIT cost per kernel operation (AdaptiveCpp flow).
  double JITCostPerOp = 400.0;
  /// When non-empty, compiled with exactly this textual pass pipeline
  /// instead of the pipeline derived from Flow and the switches above
  /// (see ir/PassRegistry.h for the grammar). Ablation studies and
  /// pipeline experiments are string edits, not recompiles.
  std::string PipelineOverride;
};

/// A compiled program: the optimized joint module plus launch metadata.
class Executable : public rt::KernelLauncher {
public:
  Executable(OwningOpRef Module, CompilerOptions Options,
             exec::Device &Dev);
  ~Executable() override;

  LogicalResult launchKernel(std::string_view Name,
                             const exec::NDRange &Range,
                             const std::vector<exec::KernelArg> &Args,
                             exec::LaunchStats &Stats,
                             std::string *ErrorMessage) override;

  ModuleOp getModule() const { return ModuleOp::cast(Module.get()); }
  /// Printed IR of one kernel (for examples and debugging).
  std::string getKernelIR(std::string_view Name) const;
  FuncOp lookupKernel(std::string_view Name) const;

private:
  OwningOpRef Module;
  CompilerOptions Options;
  exec::Device &Dev;
  /// Source-level kernel-argument indices dropped by SYCL DAE, per kernel.
  std::map<std::string, std::set<unsigned>> DeadArgs;
  /// Kernels already JIT-compiled in this run (AdaptiveCpp flow).
  std::set<std::string> JITCompiled;
};

/// Drives compilation of a SourceProgram under a given configuration.
class Compiler {
public:
  explicit Compiler(CompilerOptions Options) : Options(Options) {}

  /// Compiles \p Program for \p Dev. The program's module is cloned; the
  /// source remains reusable for other configurations. Returns null on
  /// pipeline failure.
  std::unique_ptr<Executable> compile(const frontend::SourceProgram &Program,
                                      exec::Device &Dev,
                                      std::string *ErrorMessage = nullptr);

  /// The textual pass pipeline for \p Options: PipelineOverride when set,
  /// otherwise the flow's pipeline with disabled optimizations omitted.
  /// Runnable as-is by `smlir-opt --pass-pipeline=<result>`.
  static std::string getPipeline(const CompilerOptions &Options);

  /// Populates \p PM by parsing getPipeline(\p Options) through the pass
  /// registry (exposed for tests and pass-pipeline experiments).
  static LogicalResult buildPipeline(PassManager &PM,
                                     const CompilerOptions &Options,
                                     std::string *ErrorMessage = nullptr);

  /// Pass statistics report of the last compile() call.
  const std::string &getLastReport() const { return LastReport; }

private:
  CompilerOptions Options;
  std::string LastReport;
};

} // namespace core
} // namespace smlir

#endif // SMLIR_CORE_COMPILER_H
