//===- Compiler.cpp - SYCL compiler driver ------------------------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "core/CompileService.h"
#include "dialect/SYCL.h"
#include "ir/Block.h"
#include "ir/PassRegistry.h"
#include "support/Telemetry.h"
#include "transform/Passes.h"

#include <sstream>

using namespace smlir;
using namespace smlir::core;

std::string_view core::stringifyFlow(CompilerFlow Flow) {
  switch (Flow) {
  case CompilerFlow::DPCPP:
    return "DPC++";
  case CompilerFlow::SYCLMLIR:
    return "SYCL-MLIR";
  case CompilerFlow::AdaptiveCpp:
    return "AdaptiveCpp";
  }
  return "";
}

//===----------------------------------------------------------------------===//
// CompiledModule
//===----------------------------------------------------------------------===//

const exec::bc::Function *
CompiledModule::getBytecode(FuncOp Kernel, std::string_view Name,
                            std::string *WhyNot) const {
  std::lock_guard<std::mutex> Lock(BytecodeMutex);
  auto It = Bytecode.find(Name);
  if (It == Bytecode.end()) {
    std::string Why;
    std::unique_ptr<const exec::bc::Function> Fn =
        exec::bc::translate(Kernel, &Why);
    It = Bytecode
             .emplace(std::string(Name),
                      std::make_pair(std::move(Fn), std::move(Why)))
             .first;
  }
  if (!It->second.first && WhyNot)
    *WhyNot = It->second.second;
  return It->second.first.get();
}

void CompiledModule::seedBytecode(std::string Name,
                                  std::unique_ptr<const exec::bc::Function> Fn) {
  std::lock_guard<std::mutex> Lock(BytecodeMutex);
  // emplace keeps an existing translation: the first seed (or a lazy
  // translation that raced it) wins.
  Bytecode.emplace(std::move(Name),
                   std::make_pair(std::move(Fn), std::string()));
}

//===----------------------------------------------------------------------===//
// Executable
//===----------------------------------------------------------------------===//

Executable::Executable(std::shared_ptr<const CompiledModule> Compiled,
                       CompilerOptions Options,
                       const exec::TargetBackend &Target)
    : Compiled(std::move(Compiled)), Options(Options), Target(Target) {}

Executable::~Executable() = default;

exec::KernelForm Executable::getKernelForm() const {
  // The authoritative signal is the ABI marker the conversion stamped on
  // the kernels — the same attribute the interpreter binds against — so
  // the answer stays correct when PipelineOverride bypassed the target's
  // suffix or LowerToLoops forced the lowering on a high-level target.
  return Compiled->Lowered ? exec::KernelForm::LoweredSCF
                           : exec::KernelForm::HighLevelSYCL;
}

FuncOp Executable::lookupKernel(std::string_view Name) const {
  auto Top = getModule();
  auto Kernels = ModuleOp::dyn_cast(Top.lookupSymbol("kernels"));
  if (!Kernels)
    return FuncOp(nullptr);
  return FuncOp::dyn_cast(Kernels.lookupSymbol(Name));
}

std::string Executable::getKernelIR(std::string_view Name) const {
  FuncOp Kernel = lookupKernel(Name);
  return Kernel ? Kernel.getOperation()->str() : std::string();
}

const exec::bc::Function *
Executable::getKernelBytecode(std::string_view Name,
                              std::string *WhyNot) const {
  FuncOp Kernel = lookupKernel(Name);
  if (!Kernel) {
    if (WhyNot)
      *WhyNot = "unknown kernel '" + std::string(Name) + "'";
    return nullptr;
  }
  return Compiled->getBytecode(Kernel, Name, WhyNot);
}

/// Picks a work-group size for plain-range launches (the runtime's
/// choice, as in SYCL implementations): the largest power-of-two divisor
/// up to a per-dimension cap.
static int64_t pickLocalSize(int64_t Global, int64_t Cap) {
  for (int64_t Candidate = Cap; Candidate > 1; Candidate /= 2)
    if (Global % Candidate == 0)
      return Candidate;
  return 1;
}

LogicalResult Executable::launchKernel(exec::Device &Dev,
                                       std::string_view Name,
                                       const exec::NDRange &Range,
                                       const std::vector<exec::KernelArg> &Args,
                                       exec::LaunchStats &Stats,
                                       std::string *ErrorMessage) {
  FuncOp Kernel = lookupKernel(Name);
  if (!Kernel) {
    if (ErrorMessage)
      *ErrorMessage = "unknown kernel '" + std::string(Name) + "'";
    return failure();
  }

  // Drop arguments eliminated by SYCL DAE (the runtime "will not pass
  // these arguments to the kernel", paper §VII-B).
  std::vector<exec::KernelArg> LiveArgs;
  auto DeadIt = Compiled->DeadArgs.find(std::string(Name));
  for (unsigned I = 0; I < Args.size(); ++I) {
    if (DeadIt != Compiled->DeadArgs.end() && DeadIt->second.count(I))
      continue;
    LiveArgs.push_back(Args[I]);
  }

  exec::NDRange Effective = Range;
  if (!Effective.HasLocal) {
    int64_t Cap = Effective.Dim == 1 ? 64 : 8;
    for (unsigned D = 0; D < Effective.Dim; ++D)
      Effective.Local[D] = pickLocalSize(Effective.Global[D], Cap);
  }

  // Compiled tier: lowered kernels within the bytecode translator's
  // coverage execute through the dispatch-loop VM (bit-identical to the
  // interpreter); everything else tree-walks.
  if (Tier == exec::ExecutionTier::Bytecode && Compiled->Lowered)
    if (const exec::bc::Function *Fn = Compiled->getBytecode(Kernel, Name))
      return Dev.launch(*Fn, Effective, LiveArgs, Stats, ErrorMessage);

  return Dev.launch(Kernel, Effective, LiveArgs, Stats, ErrorMessage);
}

LogicalResult Executable::prepareLaunch(std::string_view Name,
                                        double &ExtraSimTime,
                                        std::string *ErrorMessage) {
  ExtraSimTime = 0.0;
  FuncOp Kernel = lookupKernel(Name);
  if (!Kernel) {
    if (ErrorMessage)
      *ErrorMessage = "unknown kernel '" + std::string(Name) + "'";
    return failure();
  }

  // AdaptiveCpp: bill runtime compilation on the first submission of
  // each kernel (cached within the run, not across runs — paper §IX).
  // Billing keys on submission, not launch success: if that first
  // command later fails, its run is aborted anyway and the cost is not
  // re-billed on a retry within the same executable.
  if (Options.Flow == CompilerFlow::AdaptiveCpp) {
    std::lock_guard<std::mutex> Lock(JITMutex);
    if (JITCompiled.insert(std::string(Name)).second) {
      unsigned NumOps = 0;
      Kernel.getOperation()->walk([&](Operation *) { ++NumOps; });
      ExtraSimTime = Options.JITCostPerOp * NumOps;
    }
  }

  // Warm the bytecode cache on the submitting thread so scheduler
  // workers racing on the actual launches find the translation already
  // done (it is one-time per kernel either way; no SimTime is billed —
  // translation stands in for no compilation the real system performs at
  // launch).
  if (Tier == exec::ExecutionTier::Bytecode && Compiled->Lowered)
    Compiled->getBytecode(Kernel, Name);
  return success();
}

//===----------------------------------------------------------------------===//
// Compiler
//===----------------------------------------------------------------------===//

/// Joins pipeline elements with commas; `func:`-prefixed runs of
/// function-scoped passes are folded into one `func(...)` group by
/// emitPipeline below.
namespace {
struct PipelineBuilder {
  std::vector<std::string> Elements;

  /// Appends a module-scoped pass.
  void add(std::string Mnemonic) { Elements.push_back(std::move(Mnemonic)); }
  /// Appends a function-scoped pass; adjacent ones share a func(...) group
  /// so each function flows through them back-to-back and preserved
  /// analyses stay cached per function.
  void addFunc(std::string Mnemonic) {
    if (!Elements.empty() && Elements.back().starts_with("func(")) {
      std::string &Group = Elements.back();
      Group.insert(Group.size() - 1, "," + Mnemonic);
      return;
    }
    Elements.push_back("func(" + std::move(Mnemonic) + ")");
  }

  std::string str() const {
    std::string Result;
    for (const std::string &E : Elements) {
      if (!Result.empty())
        Result += ",";
      Result += E;
    }
    return Result;
  }
};
} // namespace

std::string Compiler::getPipeline(const CompilerOptions &Options) {
  if (!Options.PipelineOverride.empty())
    return Options.PipelineOverride;

  PipelineBuilder P;
  switch (Options.Flow) {
  case CompilerFlow::DPCPP:
    // SMCP baseline: standard middle-end cleanups; no SYCL semantics.
    P.add("canonicalize");
    P.add("cse");
    P.addFunc("basic-licm");
    P.add("dce");
    break;

  case CompilerFlow::SYCLMLIR:
    // Joint flow (paper §IV, §VI, §VII).
    P.add("host-raising");
    P.add("canonicalize");
    if (Options.EnableHostDeviceProp)
      P.add("host-device-prop");
    P.add("canonicalize");
    P.add("cse");
    if (Options.EnableLICM)
      P.addFunc("licm");
    if (Options.EnableDetectReduction)
      P.addFunc("detect-reduction");
    if (Options.EnableLoopInternalization)
      P.add("loop-internalization");
    P.add("canonicalize");
    P.add("cse");
    P.add("dce");
    if (Options.EnableDAE)
      P.add("sycl-dae");
    break;

  case CompilerFlow::AdaptiveCpp:
    // SSCP: runtime information is available at (JIT) compile time, but
    // the optimizer has no SYCL dialect semantics. LLVM's LICM performs
    // scalar promotion of loop-invariant memory locations at JIT time
    // (when the runtime-specialized aliasing facts allow it), which is the
    // LLVM-level analogue of Detect Reduction — modeled here by running
    // that pass; Loop Internalization has no LLVM counterpart.
    P.add("host-raising");
    P.add("canonicalize");
    P.add("host-device-prop");
    P.add("canonicalize");
    P.add("cse");
    P.addFunc("basic-licm");
    P.addFunc("detect-reduction");
    P.add("dce");
    break;
  }

  std::string Result = P.str();
  if (Options.LowerToLoops) {
    // The same lowering stage LoweredSCF targets append through their
    // pipeline suffix (one shared spelling, so the dedupe in
    // applyTargetSuffix recognizes it).
    if (!Result.empty())
      Result += ",";
    Result += exec::kLoweredFormPipeline;
  }
  return Result;
}

std::string Compiler::getPipeline(const CompilerOptions &Options,
                                  const exec::TargetBackend &Target) {
  std::string Base = getPipeline(Options);
  if (!Options.PipelineOverride.empty())
    return Base; // Explicit pipelines run verbatim on any target.
  return exec::applyTargetSuffix(std::move(Base), Target);
}

LogicalResult Compiler::buildPipeline(PassManager &PM,
                                      const CompilerOptions &Options,
                                      std::string *ErrorMessage) {
  registerAllPasses();
  return parsePassPipeline(getPipeline(Options), PM, ErrorMessage);
}

Compiler::Compiler(CompilerOptions Options) : Options(Options) {
  // Publish this instance's cache behavior through the metrics registry.
  // Same-key samples from several live Compilers accumulate into one
  // process-wide compiler.cache.* series.
  CollectorHandle = telemetry::registerCollector(
      [this](telemetry::MetricSink &Sink) {
        CacheStats Snapshot = getCacheStats();
        Sink.add("compiler.cache.hits", uint64_t(Snapshot.Hits));
        Sink.add("compiler.cache.misses", uint64_t(Snapshot.Misses));
      });
}

Compiler::~Compiler() { telemetry::unregisterCollector(CollectorHandle); }

std::unique_ptr<Executable>
Compiler::compileFor(const frontend::SourceProgram &Program,
                     const exec::TargetBackend &Target,
                     std::string *ErrorMessage, CompileOutcome *Outcome) {
  if (Outcome)
    *Outcome = CompileOutcome::Failed;
  if (!Program.DeviceModule) {
    if (ErrorMessage)
      *ErrorMessage = "program has no device module";
    return nullptr;
  }

  std::string Pipeline = getPipeline(Options, Target);
  // Content-addressed request: the printed source module (so a program
  // rebuilt or mutated in place can never silently hit a stale entry —
  // one print is cheap next to a pipeline run). The CompileService keys
  // on (target, pipeline, source IR) process-wide: textually identical
  // programs share one compiled artifact across compilers and contexts.
  std::string SourceIR = Program.DeviceModule.get()->str();

  // The full pipeline run the service invokes on a miss — at most once
  // per key process-wide at a time, concurrently for distinct keys (the
  // context's uniquing tables are internally locked; each run mutates
  // only its own clone).
  auto RunPipeline =
      [&](std::string &Error) -> std::shared_ptr<const CompiledModule> {
    // Clone so that one source can be compiled under several
    // configurations and targets.
    IRMapping Mapper;
    OwningOpRef Module(Program.DeviceModule.get()->clone(Mapper));

    if (Options.Flow == CompilerFlow::DPCPP) {
      // SMCP: the device compiler never sees the host module (paper
      // Fig. 1, dotted path).
      std::vector<Operation *> HostFuncs;
      auto Top = ModuleOp::cast(Module.get());
      for (Operation *Op : *Top.getBody())
        if (FuncOp::dyn_cast(Op) && !Op->hasAttr("sycl.kernel"))
          HostFuncs.push_back(Op);
      for (Operation *Func : HostFuncs) {
        Func->dropAllReferences();
        Func->erase();
      }
    }

    MLIRContext *Ctx = Program.Context;
    PassManager PM(Ctx);
    PM.enableVerifier(Options.VerifyPasses);
    registerAllPasses();
    if (parsePassPipeline(Pipeline, PM, &Error).failed() ||
        PM.run(Module.get(), &Error).failed())
      return nullptr;

    auto Compiled = std::make_shared<CompiledModule>();
    Compiled->Module = std::move(Module);
    Compiled->Report = PM.getReport();
    // Collect launch metadata in one walk: the kernel form the pipeline
    // produced, and the DAE results (the schedule ops carry the original
    // indices of removed kernel arguments).
    Compiled->Module->walk([&](Operation *Op) {
      if (Op->hasAttr(sycl::kLoweredKernelAttrName))
        Compiled->Lowered = true;
      auto Schedule = sycl::HostScheduleKernelOp::dyn_cast(Op);
      if (!Schedule)
        return;
      auto Dead = Op->getAttrOfType<ArrayAttr>("dead_args");
      if (!Dead)
        return;
      std::string Kernel = Schedule.getKernel().getLeafReference();
      for (unsigned I = 0; I < Dead.size(); ++I) {
        // Kernel-signature index; index 0 is the item argument, so the
        // source-level argument index is one less.
        int64_t SigIndex = Dead[I].cast<IntegerAttr>().getValue();
        Compiled->DeadArgs[Kernel].insert(
            static_cast<unsigned>(SigIndex - 1));
      }
    });
    return Compiled;
  };

  CompileOutcome Served = CompileOutcome::Failed;
  std::shared_ptr<const CompiledModule> Result =
      CompileService::get().compileThrough(
          Program.Context, std::move(SourceIR), Target.getMnemonic(),
          Pipeline, RunPipeline, &Served, ErrorMessage);
  if (Outcome)
    *Outcome = Served;
  if (!Result)
    return nullptr;

  // Per-instance stats: a Miss ran the pipeline in this call; any other
  // outcome was served from shared state (including waiting on another
  // thread's in-flight run — only one compilation happened). Both
  // counters share one word so snapshots cannot tear (getCacheStats).
  HitsAndMisses.fetch_add(Served == CompileOutcome::Miss ? 1
                                                         : (uint64_t(1) << 32),
                          std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> Lock(ReportMutex);
    LastReport = Result->Report;
  }
  return std::make_unique<Executable>(std::move(Result), Options, Target);
}

std::unique_ptr<Executable>
Compiler::compileFor(const frontend::SourceProgram &Program,
                     std::string_view Target, std::string *ErrorMessage,
                     CompileOutcome *Outcome) {
  const exec::TargetBackend *Backend =
      exec::resolveTarget(Target, ErrorMessage);
  if (!Backend)
    return nullptr;
  return compileFor(Program, *Backend, ErrorMessage, Outcome);
}
