//===- HostIRImporter.cpp - Host LLVM-dialect IR synthesis -------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "frontend/HostIRImporter.h"

#include "dialect/Arith.h"
#include "dialect/RuntimeABI.h"
#include "frontend/KernelBuilder.h"
#include "ir/Block.h"

#include <map>

using namespace smlir;
using namespace smlir::frontend;

namespace {

Type elementTypeFor(MLIRContext *Context, exec::Storage::Kind Kind,
                    unsigned Width) {
  return Kind == exec::Storage::Kind::Float
             ? Type(FloatType::get(Context, Width))
             : Type(IntegerType::get(Context, Width));
}

/// Emits an alloca + range constructor call for constant \p Sizes.
Value emitRange(OpBuilder &Builder, Location Loc,
                const std::vector<int64_t> &Sizes) {
  MLIRContext *Ctx = Builder.getContext();
  Value Range = Builder
                    .create<llvmir::LLVMAllocaOp>(
                        Loc, sycl::RangeType::get(Ctx, Sizes.size()))
                    .getOperation()
                    ->getResult(0);
  std::vector<Value> Operands = {Range};
  for (int64_t Size : Sizes)
    Operands.push_back(arith::createIntConstant(
        Builder, Loc, IntegerType::get(Ctx, 64), Size));
  Builder.create<llvmir::LLVMCallOp>(Loc, abi::rangeCtor(Sizes.size()),
                                     Operands);
  return Range;
}

/// Emits an alloca + id constructor call for constant \p Values.
Value emitID(OpBuilder &Builder, Location Loc,
             const std::vector<int64_t> &Values) {
  MLIRContext *Ctx = Builder.getContext();
  Value ID = Builder
                 .create<llvmir::LLVMAllocaOp>(
                     Loc, sycl::IDType::get(Ctx, Values.size()))
                 .getOperation()
                 ->getResult(0);
  std::vector<Value> Operands = {ID};
  for (int64_t V : Values)
    Operands.push_back(arith::createIntConstant(
        Builder, Loc, IntegerType::get(Ctx, 64), V));
  Builder.create<llvmir::LLVMCallOp>(Loc, abi::idCtor(Values.size()),
                                     Operands);
  return ID;
}

} // namespace

void frontend::importHostIR(SourceProgram &Program) {
  MLIRContext *Ctx = Program.Context;
  ModuleOp Top = ModuleOp::cast(
      getOrCreateKernelsModule(Program).getOperation()->getParentOp());
  OpBuilder Builder(Ctx);
  Builder.setInsertionPointToEnd(Top.getBody());
  Location Loc = Location::get(Ctx, "host_main");
  auto PtrTy = llvmir::PtrType::get(Ctx);

  auto HostMain = Builder.create<FuncOp>(
      Loc, "host_main", FunctionType::get(Ctx, {}, {}));
  Block *Entry = HostMain.addEntryBlock();
  Builder.setInsertionPointToEnd(Entry);
  (void)PtrTy;

  // Buffers: host data pointer + range + buffer object.
  std::map<std::string, Value> BufferObjs;
  for (const BufferDecl &Buffer : Program.Buffers) {
    Value Data = Builder.create<llvmir::LLVMAllocaOp>(Loc, Type())
                     .getOperation()
                     ->getResult(0);
    Value Range = emitRange(Builder, Loc, Buffer.Shape);
    Type Elem = elementTypeFor(Ctx, Buffer.Kind, Buffer.Width);
    Value Buf =
        Builder
            .create<llvmir::LLVMAllocaOp>(
                Loc,
                sycl::BufferType::get(Ctx, Buffer.Shape.size(), Elem))
            .getOperation()
            ->getResult(0);
    Builder.create<llvmir::LLVMCallOp>(
        Loc, abi::bufferCtor(Buffer.Shape.size(), Elem),
        std::vector<Value>{Buf, Data, Range});
    BufferObjs[Buffer.Name] = Buf;
  }

  // Submissions: handler + ranges + accessors + parallel_for call.
  for (const SubmitDecl &Submit : Program.Submits) {
    Value Handler = Builder.create<llvmir::LLVMAllocaOp>(Loc, Type())
                        .getOperation()
                        ->getResult(0);
    std::vector<int64_t> GlobalSizes(
        Submit.Range.Global.begin(),
        Submit.Range.Global.begin() + Submit.Range.Dim);
    Value GlobalRange = emitRange(Builder, Loc, GlobalSizes);
    Value LocalRange;
    if (Submit.Range.HasLocal) {
      std::vector<int64_t> LocalSizes(
          Submit.Range.Local.begin(),
          Submit.Range.Local.begin() + Submit.Range.Dim);
      LocalRange = emitRange(Builder, Loc, LocalSizes);
    }

    std::vector<Value> CallArgs = {Handler, GlobalRange};
    if (LocalRange)
      CallArgs.push_back(LocalRange);

    for (const KernelArgDecl &Arg : Submit.Args) {
      if (const auto *Scalar = std::get_if<ScalarArg>(&Arg)) {
        switch (Scalar->ScalarKind) {
        case ScalarArg::Kind::I64:
          CallArgs.push_back(arith::createIntConstant(
              Builder, Loc, IntegerType::get(Ctx, 64), Scalar->IntValue));
          break;
        case ScalarArg::Kind::F64:
          CallArgs.push_back(arith::createFloatConstant(
              Builder, Loc, FloatType::get(Ctx, 64), Scalar->FloatValue));
          break;
        case ScalarArg::Kind::F32:
          CallArgs.push_back(arith::createFloatConstant(
              Builder, Loc, FloatType::get(Ctx, 32), Scalar->FloatValue));
          break;
        }
        continue;
      }
      const auto &Acc = std::get<AccessorArg>(Arg);
      const BufferDecl *Buffer = Program.findBuffer(Acc.Buffer);
      assert(Buffer && "accessor over undeclared buffer");
      Type Elem = elementTypeFor(Ctx, Buffer->Kind, Buffer->Width);
      unsigned Dim = Buffer->Shape.size();
      Value AccObj =
          Builder
              .create<llvmir::LLVMAllocaOp>(
                  Loc, sycl::AccessorType::get(Ctx, Dim, Elem, Acc.Mode))
              .getOperation()
              ->getResult(0);
      std::vector<Value> CtorArgs = {AccObj, BufferObjs[Acc.Buffer],
                                     Handler};
      if (!Acc.Range.empty()) {
        // Ranged accessor: explicit sub-range and offset.
        CtorArgs.push_back(emitRange(Builder, Loc, Acc.Range));
        CtorArgs.push_back(emitID(
            Builder, Loc,
            Acc.Offset.empty() ? std::vector<int64_t>(Dim, 0)
                               : Acc.Offset));
      }
      Builder.create<llvmir::LLVMCallOp>(
          Loc, abi::accessorCtor(Dim, Elem, Acc.Mode), CtorArgs);
      CallArgs.push_back(AccObj);
    }

    Builder.create<llvmir::LLVMCallOp>(
        Loc,
        abi::parallelFor(Submit.Kernel, Submit.Range.Dim,
                         Submit.Range.HasLocal),
        CallArgs);
  }

  Builder.create<ReturnOp>(Loc);
}
