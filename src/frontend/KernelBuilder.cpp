//===- KernelBuilder.cpp - Device kernel construction DSL --------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "frontend/KernelBuilder.h"

#include "dialect/MemRef.h"
#include "ir/Block.h"
#include "ir/Verifier.h"
#include "support/ErrorHandling.h"

using namespace smlir;
using namespace smlir::frontend;

ModuleOp frontend::getOrCreateKernelsModule(SourceProgram &Program) {
  if (!Program.DeviceModule) {
    ModuleOp Top = ModuleOp::create(Program.Context);
    OpBuilder Builder(Program.Context);
    Builder.setInsertionPointToEnd(Top.getBody());
    ModuleOp Kernels =
        Builder.create<ModuleOp>(Builder.getUnknownLoc(), "kernels");
    Kernels.getBody(); // Materialize the body block.
    Program.DeviceModule = OwningOpRef(Top.getOperation());
  }
  return Program.getKernelsModule();
}

KernelBuilder::KernelBuilder(SourceProgram &Program, std::string Name,
                             unsigned Dims, bool UsesNDItem)
    : Program(Program), Context(Program.Context), Builder(Program.Context),
      Loc(Location::get(Program.Context, "kernel:" + Name)),
      Kernel(nullptr), Name(Name), Dims(Dims), UsesNDItem(UsesNDItem) {
  // Create the kernel eagerly with the leading item/nd_item argument;
  // further arguments are appended via addAccessorArg/addScalarArg.
  Type ItemTy = UsesNDItem
                    ? Type(sycl::NDItemType::get(Context, Dims))
                    : Type(sycl::ItemType::get(Context, Dims));
  Type ItemMemTy = sycl::getObjectArgMemRefType(ItemTy);
  ModuleOp Kernels = getOrCreateKernelsModule(Program);
  Builder.setInsertionPointToEnd(Kernels.getBody());
  Kernel = Builder.create<FuncOp>(
      Loc, this->Name, FunctionType::get(Context, {ItemMemTy}, {}));
  Kernel.getOperation()->setAttr("sycl.kernel", UnitAttr::get(Context));
  Block *Entry = Kernel.addEntryBlock();
  Builder.setInsertionPointToEnd(Entry);
  ItemArg = Entry->getArgument(0);
}

/// Appends one argument of type \p Ty to the kernel signature and entry
/// block.
static Value appendArgument(FuncOp Kernel, Type Ty) {
  FunctionType OldTy = Kernel.getFunctionType();
  std::vector<Type> Inputs = OldTy.getInputs();
  Inputs.push_back(Ty);
  Kernel.setFunctionType(FunctionType::get(
      Kernel.getContext(), std::move(Inputs), OldTy.getResults()));
  return Kernel.getEntryBlock()->addArgument(Ty);
}

Value KernelBuilder::addAccessorArg(Type ElementType, unsigned Dim,
                                    sycl::AccessMode Mode) {
  auto AccTy = sycl::AccessorType::get(Context, Dim, ElementType, Mode);
  return appendArgument(Kernel, sycl::getObjectArgMemRefType(AccTy));
}

Value KernelBuilder::addScalarArg(Type Ty) {
  return appendArgument(Kernel, Ty);
}

void KernelBuilder::finish() {
  Builder.create<ReturnOp>(Loc);
  std::string Error;
  if (verify(Kernel.getOperation(), &Error).failed())
    reportFatalError("kernel '" + Name + "' failed to verify: " + Error);
}

Value KernelBuilder::cIdx(int64_t Value) {
  return arith::createIndexConstant(Builder, Loc, Value);
}
Value KernelBuilder::cI32(int64_t Value) {
  return arith::createIntConstant(Builder, Loc, i32(), Value);
}
Value KernelBuilder::cFloat(Type Ty, double Value) {
  return arith::createFloatConstant(Builder, Loc, Ty, Value);
}

Value KernelBuilder::gid(unsigned Dim) {
  Value DimConst = cI32(Dim);
  if (UsesNDItem)
    return Builder
        .create<sycl::NDItemGetGlobalIDOp>(Loc, ItemArg, DimConst)
        .getOperation()
        ->getResult(0);
  return Builder.create<sycl::ItemGetIDOp>(Loc, ItemArg, DimConst)
      .getOperation()
      ->getResult(0);
}

Value KernelBuilder::lid(unsigned Dim) {
  assert(UsesNDItem && "local id requires an nd_item kernel");
  return Builder
      .create<sycl::NDItemGetLocalIDOp>(Loc, ItemArg, cI32(Dim))
      .getOperation()
      ->getResult(0);
}

Value KernelBuilder::globalRange(unsigned Dim) {
  Value DimConst = cI32(Dim);
  if (UsesNDItem)
    return Builder
        .create<sycl::NDItemGetGlobalRangeOp>(Loc, ItemArg, DimConst)
        .getOperation()
        ->getResult(0);
  return Builder.create<sycl::ItemGetRangeOp>(Loc, ItemArg, DimConst)
      .getOperation()
      ->getResult(0);
}

Value KernelBuilder::localRange(unsigned Dim) {
  assert(UsesNDItem && "local range requires an nd_item kernel");
  return Builder
      .create<sycl::NDItemGetLocalRangeOp>(Loc, ItemArg, cI32(Dim))
      .getOperation()
      ->getResult(0);
}

void KernelBuilder::barrier() {
  assert(UsesNDItem && "barrier requires an nd_item kernel");
  Builder.create<sycl::GroupBarrierOp>(Loc, ItemArg);
}

#define SMLIR_KB_BINOP(Method, OpTy)                                          \
  Value KernelBuilder::Method(Value A, Value B) {                             \
    return Builder.create<OpTy>(Loc, A, B).getOperation()->getResult(0);      \
  }
SMLIR_KB_BINOP(addi, arith::AddIOp)
SMLIR_KB_BINOP(subi, arith::SubIOp)
SMLIR_KB_BINOP(muli, arith::MulIOp)
SMLIR_KB_BINOP(divi, arith::DivSIOp)
SMLIR_KB_BINOP(addf, arith::AddFOp)
SMLIR_KB_BINOP(subf, arith::SubFOp)
SMLIR_KB_BINOP(mulf, arith::MulFOp)
SMLIR_KB_BINOP(divf, arith::DivFOp)
#undef SMLIR_KB_BINOP

Value KernelBuilder::sqrt(Value A) {
  return Builder.create<math::SqrtOp>(Loc, A).getOperation()->getResult(0);
}

Value KernelBuilder::cmpi(arith::CmpIPredicate Pred, Value A, Value B) {
  return Builder.create<arith::CmpIOp>(Loc, Pred, A, B)
      .getOperation()
      ->getResult(0);
}

Value KernelBuilder::cmpf(arith::CmpFPredicate Pred, Value A, Value B) {
  return Builder.create<arith::CmpFOp>(Loc, Pred, A, B)
      .getOperation()
      ->getResult(0);
}

Value KernelBuilder::select(Value Cond, Value TrueValue, Value FalseValue) {
  return Builder.create<arith::SelectOp>(Loc, Cond, TrueValue, FalseValue)
      .getOperation()
      ->getResult(0);
}

Value KernelBuilder::sitofp(Value A, Type Ty) {
  return Builder.create<arith::SIToFPOp>(Loc, A, Ty)
      .getOperation()
      ->getResult(0);
}

Value KernelBuilder::subscript(Value Accessor,
                               const std::vector<Value> &Indices) {
  auto IDTy = sycl::IDType::get(Context, Indices.size());
  Value IDMem =
      Builder.create<memref::AllocaOp>(Loc, sycl::getObjectMemRefType(IDTy))
          .getOperation()
          ->getResult(0);
  Builder.create<sycl::ConstructorOp>(Loc, "id", IDMem, Indices);
  return Builder.create<sycl::AccessorSubscriptOp>(Loc, Accessor, IDMem)
      .getOperation()
      ->getResult(0);
}

Value KernelBuilder::loadView(Value View) {
  return Builder
      .create<affine::AffineLoadOp>(Loc, View, std::vector<Value>{cIdx(0)})
      .getOperation()
      ->getResult(0);
}

void KernelBuilder::storeView(Value View, Value Val) {
  Builder.create<affine::AffineStoreOp>(Loc, Val, View,
                                        std::vector<Value>{cIdx(0)});
}

Value KernelBuilder::loadAcc(Value Accessor,
                             const std::vector<Value> &Indices) {
  return loadView(subscript(Accessor, Indices));
}

void KernelBuilder::storeAcc(Value Accessor,
                             const std::vector<Value> &Indices, Value Val) {
  storeView(subscript(Accessor, Indices), Val);
}

Value KernelBuilder::accRange(Value Accessor, unsigned Dim) {
  return Builder.create<sycl::AccessorGetRangeOp>(Loc, Accessor, cI32(Dim))
      .getOperation()
      ->getResult(0);
}

std::vector<Value> KernelBuilder::forLoop(
    Value Lb, Value Ub, Value Step, const std::vector<Value> &Inits,
    const std::function<std::vector<Value>(
        KernelBuilder &, Value, const std::vector<Value> &)> &Body) {
  auto For =
      Builder.create<affine::AffineForOp>(Loc, Lb, Ub, Step, Inits);
  {
    OpBuilder::InsertionGuard Guard(Builder);
    Builder.setInsertionPointToEnd(For.getBody());
    std::vector<Value> Carried;
    for (unsigned I = 0; I < Inits.size(); ++I)
      Carried.push_back(For.getRegionIterArg(I));
    std::vector<Value> Yields = Body(*this, For.getInductionVar(), Carried);
    assert(Yields.size() == Inits.size() && "yield arity mismatch");
    Builder.create<affine::AffineYieldOp>(Loc, Yields);
  }
  return For.getOperation()->getResults();
}

void KernelBuilder::forLoop(
    int64_t Lb, int64_t Ub,
    const std::function<void(KernelBuilder &, Value)> &Body) {
  forLoop(cIdx(Lb), cIdx(Ub), cIdx(1), {},
          [&](KernelBuilder &KB, Value IV,
              const std::vector<Value> &) -> std::vector<Value> {
            Body(KB, IV);
            return {};
          });
}
