//===- SourceProgram.h - Declarative SYCL program description ---*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The frontend's program representation: device kernels (already MLIR,
/// produced by the KernelBuilder — the Polygeist stand-in) plus a
/// declarative description of the host program (buffers, kernel
/// submissions, validation). The HostIRImporter lowers the host side to
/// LLVM-dialect IR (the mlir-translate stand-in, paper Fig. 1), and the
/// runtime executes the same description against a compiled executable.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_FRONTEND_SOURCEPROGRAM_H
#define SMLIR_FRONTEND_SOURCEPROGRAM_H

#include "dialect/Builtin.h"
#include "dialect/SYCL.h"
#include "exec/Device.h"
#include "ir/Parser.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace smlir {
namespace frontend {

/// A host-side buffer declaration.
struct BufferDecl {
  std::string Name;
  exec::Storage::Kind Kind = exec::Storage::Kind::Float;
  std::vector<int64_t> Shape;
  /// Fills the initial contents (optional).
  std::function<void(exec::Storage &)> Init;
  /// Element bit width (32/64) — determines the device element type (f32
  /// vs f64, i32 vs i64). Storage precision is uniform; the width affects
  /// IR types only.
  unsigned Width = 32;

  int64_t numElements() const {
    int64_t Count = 1;
    for (int64_t Dim : Shape)
      Count *= Dim;
    return Count;
  }
};

/// A kernel argument in a submission: an accessor over a named buffer, or
/// a scalar constant.
struct AccessorArg {
  std::string Buffer;
  sycl::AccessMode Mode = sycl::AccessMode::ReadWrite;
  /// Ranged accessor: sub-range and offset (empty: whole buffer).
  std::vector<int64_t> Range;
  std::vector<int64_t> Offset;
};

struct ScalarArg {
  enum class Kind { I64, F64, F32 } ScalarKind = Kind::I64;
  int64_t IntValue = 0;
  double FloatValue = 0.0;

  static ScalarArg i64(int64_t Value) { return {Kind::I64, Value, 0.0}; }
  static ScalarArg f64(double Value) { return {Kind::F64, 0, Value}; }
  static ScalarArg f32(double Value) { return {Kind::F32, 0, Value}; }
};

using KernelArgDecl = std::variant<AccessorArg, ScalarArg>;

/// One queue.submit with a parallel_for.
struct SubmitDecl {
  std::string Kernel;
  exec::NDRange Range;
  std::vector<KernelArgDecl> Args;
};

/// Full program: device kernels + host behavior.
struct SourceProgram {
  explicit SourceProgram(MLIRContext *Context) : Context(Context) {}

  MLIRContext *Context;
  /// Top-level module holding the nested `@kernels` module.
  OwningOpRef DeviceModule;
  std::vector<BufferDecl> Buffers;
  std::vector<SubmitDecl> Submits;
  /// Validates final buffer contents (name -> storage).
  std::function<bool(const std::map<std::string, exec::Storage *> &)>
      Verify;

  const BufferDecl *findBuffer(std::string_view Name) const {
    for (const BufferDecl &Buffer : Buffers)
      if (Buffer.Name == Name)
        return &Buffer;
    return nullptr;
  }

  /// The nested kernels module.
  ModuleOp getKernelsModule() const {
    auto Top = ModuleOp::cast(DeviceModule.get());
    return ModuleOp::cast(Top.lookupSymbol("kernels"));
  }
};

} // namespace frontend
} // namespace smlir

#endif // SMLIR_FRONTEND_SOURCEPROGRAM_H
