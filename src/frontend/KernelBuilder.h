//===- KernelBuilder.h - Device kernel construction DSL ---------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small embedded DSL for authoring SYCL device kernels directly as MLIR
/// in the SYCL dialect — the stand-in for the paper's Polygeist-based
/// device frontend (C++ -> MLIR). Kernels produced here have exactly the
/// shape of the paper's listings: an item/nd_item argument, accessor
/// arguments behind memrefs, `sycl.constructor` + `sycl.accessor.subscript`
/// addressing and affine loops.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_FRONTEND_KERNELBUILDER_H
#define SMLIR_FRONTEND_KERNELBUILDER_H

#include "dialect/Arith.h"
#include "dialect/Builtin.h"
#include "dialect/SCF.h"
#include "dialect/SYCL.h"
#include "frontend/SourceProgram.h"
#include "ir/Builders.h"

#include <functional>
#include <string>
#include <vector>

namespace smlir {
namespace frontend {

/// Builds one kernel function into a program's `@kernels` module.
///
/// Typical usage:
/// \code
///   KernelBuilder KB(Program, "vecadd", 1, /*UsesNDItem=*/false);
///   Value A = KB.addAccessorArg(KB.f32(), 1, sycl::AccessMode::Read);
///   Value B = KB.addAccessorArg(KB.f32(), 1, sycl::AccessMode::Read);
///   Value C = KB.addAccessorArg(KB.f32(), 1, sycl::AccessMode::Write);
///   Value I = KB.gid(0);
///   KB.storeAcc(C, {I}, KB.addf(KB.loadAcc(A, {I}), KB.loadAcc(B, {I})));
///   KB.finish();
/// \endcode
class KernelBuilder {
public:
  /// Starts a kernel named \p Name over a \p Dims-dimensional index space.
  /// \p UsesNDItem selects an nd_item argument (work-group queries and
  /// barriers) instead of a plain item.
  KernelBuilder(SourceProgram &Program, std::string Name, unsigned Dims,
                bool UsesNDItem);

  MLIRContext *getContext() const { return Context; }
  OpBuilder &builder() { return Builder; }
  Location loc() const { return Loc; }
  FuncOp getKernel() const { return Kernel; }

  //===------------------------------------------------------------------===//
  // Arguments
  //===------------------------------------------------------------------===//

  /// Appends an accessor argument and returns its SSA value.
  Value addAccessorArg(Type ElementType, unsigned Dim,
                       sycl::AccessMode Mode);
  /// Appends a scalar argument and returns its SSA value.
  Value addScalarArg(Type Ty);

  /// Terminates the kernel with func.return and verifies it.
  void finish();

  //===------------------------------------------------------------------===//
  // Types and constants
  //===------------------------------------------------------------------===//

  Type f32() { return FloatType::get(Context, 32); }
  Type f64() { return FloatType::get(Context, 64); }
  Type i32() { return IntegerType::get(Context, 32); }
  Type i64() { return IntegerType::get(Context, 64); }
  Type index() { return IndexType::get(Context); }

  Value cIdx(int64_t Value);
  Value cI32(int64_t Value);
  Value cFloat(Type Ty, double Value);

  //===------------------------------------------------------------------===//
  // Work-item queries
  //===------------------------------------------------------------------===//

  /// Global id in dimension \p Dim.
  Value gid(unsigned Dim);
  /// Local id in dimension \p Dim (nd_item kernels only).
  Value lid(unsigned Dim);
  /// Global range in dimension \p Dim.
  Value globalRange(unsigned Dim);
  /// Work-group size in dimension \p Dim (nd_item kernels only).
  Value localRange(unsigned Dim);
  /// Inserts a work-group barrier (nd_item kernels only).
  void barrier();

  //===------------------------------------------------------------------===//
  // Arithmetic sugar
  //===------------------------------------------------------------------===//

  Value addi(Value A, Value B);
  Value subi(Value A, Value B);
  Value muli(Value A, Value B);
  Value divi(Value A, Value B);
  Value addf(Value A, Value B);
  Value subf(Value A, Value B);
  Value mulf(Value A, Value B);
  Value divf(Value A, Value B);
  Value sqrt(Value A);
  Value cmpi(arith::CmpIPredicate Pred, Value A, Value B);
  Value cmpf(arith::CmpFPredicate Pred, Value A, Value B);
  Value select(Value Cond, Value TrueValue, Value FalseValue);
  Value sitofp(Value A, Type Ty);

  //===------------------------------------------------------------------===//
  // Accessor memory access (paper Listing 3 shape)
  //===------------------------------------------------------------------===//

  /// Builds constructor + subscript, yielding the element view memref.
  Value subscript(Value Accessor, const std::vector<Value> &Indices);
  /// Loads through a previously built element view.
  Value loadView(Value View);
  /// Stores through a previously built element view.
  void storeView(Value View, Value Val);
  /// subscript + load.
  Value loadAcc(Value Accessor, const std::vector<Value> &Indices);
  /// subscript + store.
  void storeAcc(Value Accessor, const std::vector<Value> &Indices,
                Value Val);
  /// Accessor range query.
  Value accRange(Value Accessor, unsigned Dim);

  //===------------------------------------------------------------------===//
  // Loops
  //===------------------------------------------------------------------===//

  /// Builds an `affine.for` from \p Lb to \p Ub (step \p Step) with
  /// loop-carried values \p Inits. \p Body receives the induction variable
  /// and current iteration values and returns the yielded values. Returns
  /// the loop results.
  std::vector<Value>
  forLoop(Value Lb, Value Ub, Value Step, const std::vector<Value> &Inits,
          const std::function<std::vector<Value>(
              KernelBuilder &, Value, const std::vector<Value> &)> &Body);

  /// Convenience constant-bound loop without carried values.
  void forLoop(int64_t Lb, int64_t Ub,
               const std::function<void(KernelBuilder &, Value)> &Body);

private:
  SourceProgram &Program;
  MLIRContext *Context;
  OpBuilder Builder;
  Location Loc;
  FuncOp Kernel;
  std::string Name;
  unsigned Dims;
  bool UsesNDItem;
  Value ItemArg;
};

/// Creates (or returns) the program's top-level module with a nested
/// `@kernels` module.
ModuleOp getOrCreateKernelsModule(SourceProgram &Program);

} // namespace frontend
} // namespace smlir

#endif // SMLIR_FRONTEND_KERNELBUILDER_H
