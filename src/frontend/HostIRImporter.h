//===- HostIRImporter.h - Host LLVM-dialect IR synthesis --------*- C++ -*-===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes the pre-raising host IR for a SourceProgram: an
/// LLVM-dialect-like `@host_main` function consisting of allocas and calls
/// into the simulated DPC++ runtime ABI. This is the stand-in for the
/// paper's `mlir-translate` step (Fig. 1): "we take an alternative
/// approach obtaining MLIR host code from LLVM IR". The Host Raising pass
/// (paper §VII-A) then recovers `sycl.host.*` semantics from these calls.
///
//===----------------------------------------------------------------------===//

#ifndef SMLIR_FRONTEND_HOSTIRIMPORTER_H
#define SMLIR_FRONTEND_HOSTIRIMPORTER_H

#include "frontend/SourceProgram.h"

namespace smlir {
namespace frontend {

/// Appends `@host_main` (unraised host IR) to the program's top-level
/// module. Must be called after all kernels have been built.
void importHostIR(SourceProgram &Program);

} // namespace frontend
} // namespace smlir

#endif // SMLIR_FRONTEND_HOSTIRIMPORTER_H
