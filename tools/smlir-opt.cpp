//===- smlir-opt.cpp - Standalone pass-pipeline driver ---------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project's mlir-opt: parses a `.mlir` file (or stdin), runs a
/// textual pass pipeline from the global registry over it, and prints the
/// resulting IR to stdout. New pass orderings, ablations and reductions
/// need no C++ — the pipeline is data:
///
///   smlir-opt --pass-pipeline="host-raising,func(licm,detect-reduction)" \
///       input.mlir
///
/// Flags: --pass-pipeline=<str>, --target=<name> (appends the selected
/// target backend's pipeline suffix, so `--target=virtual-cpu` reproduces
/// what `Compiler::compileFor` runs for that backend),
/// --verify-each / --no-verify-each, --print-ir-before-all,
/// --print-ir-after-all, --pass-statistics, --list-passes,
/// --list-targets, -o <file>.
/// Diagnostics and instrumentation go to stderr; stdout carries only IR,
/// so output diffs cleanly against golden snapshots.
///
//===----------------------------------------------------------------------===//

#include "analysis/KernelLint.h"
#include "dialect/Builtin.h"
#include "exec/Bytecode.h"
#include "exec/TargetRegistry.h"
#include "ir/MLIRContext.h"
#include "ir/Parser.h"
#include "ir/Pass.h"
#include "ir/PassRegistry.h"
#include "ir/Verifier.h"
#include "transform/Passes.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace smlir;

namespace {

struct Options {
  std::string InputFile = "-";
  std::string OutputFile = "-";
  std::string Pipeline;
  std::string Target;
  bool EmitBytecode = false;
  std::string EmitBytecodeKernel;
  bool Lint = false;
  bool VerifyEach = true;
  bool PrintIRAfterAll = false;
  bool PrintIRBeforeAll = false;
  bool PassStatistics = false;
  bool Timing = false;
  bool ListPasses = false;
  bool ListTargets = false;
  bool ShowHelp = false;
};

void printHelp(std::ostream &OS) {
  OS << "usage: smlir-opt [options] [<input.mlir>|-]\n"
     << "\n"
     << "Runs a textual pass pipeline over the input module and prints the\n"
     << "resulting IR to the output.\n"
     << "\n"
     << "  --pass-pipeline=<str>  Pipeline to run, e.g.\n"
     << "                         \"host-raising,func(licm,detect-reduction)"
        ",dce\".\n"
     << "                         Grammar: pipeline ::= elt (',' elt)*\n"
     << "                                  elt ::= mnemonic | 'func(' "
        "pipeline ')'\n"
     << "  --verify-each          Verify the IR after each pass (default).\n"
     << "  --no-verify-each       Disable per-pass verification.\n"
     << "  --print-ir-after-all   Print the IR to stderr after each pass.\n"
     << "  --print-ir-before-all  Print the IR to stderr before each pass.\n"
     << "  --pass-statistics      Print the pass/analysis-cache report to\n"
     << "                         stderr after the run.\n"
     << "  --timing               Print a nested per-pass wall-time report\n"
     << "                         (mlir-opt -mlir-timing style) to stderr\n"
     << "                         after the run.\n"
     << "  --target=<name>        Append the pipeline suffix of the given\n"
     << "                         target backend (e.g. virtual-cpu lowers\n"
     << "                         kernels with convert-sycl-to-scf).\n"
     << "  --emit-bytecode[=<kernel>]\n"
     << "                         After the pipeline runs, print the\n"
     << "                         bytecode-tier disassembly of every\n"
     << "                         sycl.kernel function (or only <kernel>)\n"
     << "                         instead of the IR. Honors SMLIR_BC_FUSION\n"
     << "                         (superinstruction fusion, default on);\n"
     << "                         kernels must be in lowered form, e.g. via\n"
     << "                         --target=virtual-cpu.\n"
     << "  --lint                 After the pipeline runs, apply the static\n"
     << "                         kernel safety rules (oob-access,\n"
     << "                         divergent-barrier, racy-write,\n"
     << "                         uninit-read) and print their diagnostics\n"
     << "                         to stderr; exits 2 when any rule fires,\n"
     << "                         so it works as a CI gate.\n"
     << "  --list-passes          List registered passes and exit.\n"
     << "  --list-targets         List registered target backends and exit.\n"
     << "  -o <file>              Write output IR to <file> ('-' = stdout).\n"
     << "  --help                 Show this help.\n";
}

bool parseArgs(int Argc, char **Argv, Options &Opts, std::string &Error) {
  bool SawInput = false;
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      Opts.ShowHelp = true;
    } else if (Arg.rfind("--pass-pipeline=", 0) == 0) {
      Opts.Pipeline = std::string(Arg.substr(strlen("--pass-pipeline=")));
    } else if (Arg == "--pass-pipeline") {
      if (I + 1 >= Argc) {
        Error = "--pass-pipeline expects a value";
        return false;
      }
      Opts.Pipeline = Argv[++I];
    } else if (Arg == "--verify-each") {
      Opts.VerifyEach = true;
    } else if (Arg == "--no-verify-each") {
      Opts.VerifyEach = false;
    } else if (Arg == "--print-ir-after-all") {
      Opts.PrintIRAfterAll = true;
    } else if (Arg == "--print-ir-before-all") {
      Opts.PrintIRBeforeAll = true;
    } else if (Arg == "--pass-statistics") {
      Opts.PassStatistics = true;
    } else if (Arg == "--timing") {
      Opts.Timing = true;
    } else if (Arg == "--emit-bytecode") {
      Opts.EmitBytecode = true;
    } else if (Arg.rfind("--emit-bytecode=", 0) == 0) {
      Opts.EmitBytecode = true;
      Opts.EmitBytecodeKernel =
          std::string(Arg.substr(strlen("--emit-bytecode=")));
      if (Opts.EmitBytecodeKernel.empty()) {
        Error = "--emit-bytecode= expects a kernel name";
        return false;
      }
    } else if (Arg == "--lint") {
      Opts.Lint = true;
    } else if (Arg == "--list-passes") {
      Opts.ListPasses = true;
    } else if (Arg == "--list-targets") {
      Opts.ListTargets = true;
    } else if (Arg.rfind("--target=", 0) == 0) {
      Opts.Target = std::string(Arg.substr(strlen("--target=")));
    } else if (Arg == "--target") {
      if (I + 1 >= Argc) {
        Error = "--target expects a value";
        return false;
      }
      Opts.Target = Argv[++I];
    } else if (Arg == "-o") {
      if (I + 1 >= Argc) {
        Error = "-o expects a file name";
        return false;
      }
      Opts.OutputFile = Argv[++I];
    } else if (Arg == "-" || Arg[0] != '-') {
      if (SawInput) {
        Error = "multiple input files: '" + Opts.InputFile + "' and '" +
                std::string(Arg) + "'";
        return false;
      }
      Opts.InputFile = std::string(Arg);
      SawInput = true;
    } else {
      Error = "unknown option '" + std::string(Arg) + "'";
      return false;
    }
  }
  return true;
}

bool readInput(const std::string &Path, std::string &Content,
               std::string &Error) {
  if (Path == "-") {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Content = Buffer.str();
    return true;
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In.good()) {
    Error = "cannot open input file '" + Path + "'";
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Content = Buffer.str();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  std::string Error;
  if (!parseArgs(Argc, Argv, Opts, Error)) {
    std::cerr << "smlir-opt: " << Error << "\n";
    printHelp(std::cerr);
    return 1;
  }
  if (Opts.ShowHelp) {
    printHelp(std::cout);
    return 0;
  }

  registerAllPasses();
  exec::registerAllTargets();

  if (Opts.ListTargets) {
    std::cout << "Registered targets:\n";
    for (const exec::TargetBackend *Target :
         exec::TargetRegistry::get().getTargets()) {
      std::cout << "  " << Target->getMnemonic() << " - "
                << Target->getDescription() << "\n"
                << "    kernel form: "
                << exec::stringifyKernelForm(Target->getPreferredKernelForm());
      std::string Suffix = Target->getPipelineSuffix();
      if (!Suffix.empty())
        std::cout << ", pipeline suffix: \"" << Suffix << "\"";
      std::cout << "\n";
    }
    return 0;
  }

  if (!Opts.Target.empty()) {
    const exec::TargetBackend *Target =
        exec::resolveTarget(Opts.Target, &Error);
    if (!Target) {
      std::cerr << "smlir-opt: " << Error << "\n";
      return 1;
    }
    // The target's suffix runs after the requested pipeline, through the
    // same helper Compiler::compileFor uses — including its dedupe, so
    // replaying a recorded lowered pipeline with --target never lowers
    // twice.
    Opts.Pipeline = exec::applyTargetSuffix(std::move(Opts.Pipeline),
                                            *Target);
  }

  if (Opts.ListPasses) {
    std::cout << "Registered passes:\n";
    for (const PassInfo *Info : PassRegistry::get().getPassInfos())
      std::cout << "  " << Info->Mnemonic << " - " << Info->Description
                << "\n";
    std::cout << "  func(...) - run the nested pipeline once per "
                 "func.func\n";
    return 0;
  }

  std::string Source;
  if (!readInput(Opts.InputFile, Source, Error)) {
    std::cerr << "smlir-opt: " << Error << "\n";
    return 1;
  }

  MLIRContext Ctx;
  registerAllDialects(Ctx);
  OwningOpRef Module = parseSourceString(&Ctx, Source, &Error);
  if (!Module) {
    std::cerr << "smlir-opt: " << Opts.InputFile << ": parse error: "
              << Error << "\n";
    return 1;
  }
  if (verify(Module.get(), &Error).failed()) {
    std::cerr << "smlir-opt: " << Opts.InputFile
              << ": verification error: " << Error << "\n";
    return 1;
  }

  PassManager PM(&Ctx);
  PM.enableVerifier(Opts.VerifyEach);
  PM.enableIRPrinting(Opts.PrintIRAfterAll);
  PM.enableIRPrintingBefore(Opts.PrintIRBeforeAll);
  PM.enableTiming(Opts.Timing);
  if (parsePassPipeline(Opts.Pipeline, PM, &Error).failed()) {
    std::cerr << "smlir-opt: " << Error << "\n";
    return 1;
  }

  LogicalResult RunResult = PM.run(Module.get(), &Error);
  if (Opts.PassStatistics)
    std::cerr << PM.getReport();
  if (Opts.Timing)
    std::cerr << PM.getTimingReport();
  if (RunResult.failed()) {
    std::cerr << "smlir-opt: " << Error << "\n";
    return 1;
  }

  // The lint gate runs over the post-pipeline module (so e.g.
  // --target=virtual-cpu lints the lowered form the VM executes) with a
  // fresh analysis cache. Exit 2 distinguishes findings from usage and
  // pipeline errors.
  int ExitCode = 0;
  if (Opts.Lint) {
    AnalysisManager AM;
    std::vector<LintDiagnostic> Diags = lintKernels(Module.get(), AM);
    for (const LintDiagnostic &Diag : Diags)
      std::cerr << formatLintDiagnostic(Diag) << "\n";
    if (!Diags.empty()) {
      std::cerr << "smlir-opt: --lint: " << Diags.size() << " finding"
                << (Diags.size() == 1 ? "" : "s") << "\n";
      ExitCode = 2;
    }
  }

  std::string IR;
  if (Opts.EmitBytecode) {
    // Print the bytecode tier's compiled form instead of the IR, in the
    // exact shape of the `// ----- bytecode -----` section of the golden
    // `.bc.expected` snapshots (one blank line before each kernel) so
    // scripts/smoke_smlir_opt.sh can replay them byte-for-byte.
    std::ostringstream Listing;
    bool Found = false;
    Module.get()->walk([&](Operation *Op) {
      FuncOp F = FuncOp::dyn_cast(Op);
      if (!F || !Op->hasAttr("sycl.kernel"))
        return;
      if (!Opts.EmitBytecodeKernel.empty() &&
          F.getName() != Opts.EmitBytecodeKernel)
        return;
      Found = true;
      std::string Why;
      std::unique_ptr<exec::bc::Function> Fn = exec::bc::translate(F, &Why);
      Listing << "\n";
      if (!Fn) {
        Listing << "// kernel @" << F.getName()
                << ": outside translator coverage: " << Why << "\n";
        return;
      }
      Listing << exec::bc::disassemble(*Fn);
    });
    if (!Found) {
      if (Opts.EmitBytecodeKernel.empty())
        std::cerr << "smlir-opt: --emit-bytecode: no sycl.kernel function "
                     "in the module\n";
      else
        std::cerr << "smlir-opt: --emit-bytecode: no kernel '"
                  << Opts.EmitBytecodeKernel << "' in the module\n";
      return 1;
    }
    IR = Listing.str();
  } else {
    IR = Module.get()->str();
  }
  if (IR.empty() || IR.back() != '\n')
    IR += '\n';
  if (Opts.OutputFile == "-") {
    std::cout << IR;
  } else {
    std::ofstream Out(Opts.OutputFile, std::ios::binary | std::ios::trunc);
    if (!Out.good()) {
      std::cerr << "smlir-opt: cannot open output file '" << Opts.OutputFile
                << "'\n";
      return 1;
    }
    Out << IR;
  }
  return ExitCode;
}
