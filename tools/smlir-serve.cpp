//===- smlir-serve.cpp - Batch compilation-service driver ------------------===//
//
// Part of the SYCL-MLIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch surface of the process-wide CompileService: reads a manifest
/// of compilation requests, runs every request through
/// `Compiler::compileFor` on the runtime scheduler's worker pool (host
/// tasks, so requests genuinely overlap the way queue submissions do),
/// and reports per-request and aggregate results — which tier served
/// each request (memory hit, rematerialized, disk hit, full compile),
/// wall time, and the service's process-wide counters.
///
/// Manifest format — one request per line, `#` starts a comment:
///
///   <program.mlir> <target> [pipeline]
///
/// Paths are relative to the manifest file. The optional third column is
/// a textual pass pipeline (CompilerOptions::PipelineOverride — used
/// verbatim, no target suffix appended); without it the request compiles
/// with the default SYCLMLIR flow for the named target. Identical
/// (program, target, pipeline) rows dedupe through the service: the
/// aggregate report shows one miss and the rest as hits.
///
/// With `$SMLIR_CACHE_DIR` set (or --cache-dir), a second run of the
/// same manifest is served from the disk tier; the aggregate report's
/// `disk hits: N` line is the greppable handle CI uses to assert cache
/// persistence across processes.
///
/// `--dump-workloads <dir>` writes the device modules of the in-tree
/// benchmark workloads as `.mlir` files plus a ready-to-serve
/// manifest.txt, so the full workload sweep is one command:
///
///   smlir-serve --dump-workloads /tmp/wl && smlir-serve /tmp/wl/manifest.txt
///
/// `--run` adds an execution phase: every manifest row whose file stem
/// names an in-tree workload is rebuilt as a full program (buffers,
/// submissions, validation) and executed through the runtime — kernel
/// launches fan out across the task-graph scheduler's worker pool, so a
/// traced serve run (`SMLIR_TRACE=<file>`) contains compile-service,
/// scheduler-task and VM-launch spans from multiple workers.
/// `--metrics-out=<file>` writes the process metrics snapshot
/// (telemetry::snapshotJson) after the batch.
///
//===----------------------------------------------------------------------===//

#include "bench/workloads/Workloads.h"
#include "core/CompileService.h"
#include "core/Compiler.h"
#include "dialect/Builtin.h"
#include "exec/TargetRegistry.h"
#include "frontend/SourceProgram.h"
#include "ir/MLIRContext.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"
#include "support/Telemetry.h"
#include "transform/Passes.h"

#include <map>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace smlir;

namespace {

struct Options {
  std::string ManifestFile;
  std::string DumpDir;
  std::string CacheDir;
  std::string MetricsOut;
  bool CacheDirSet = false;
  bool JSON = false;
  bool Run = false;
  int Threads = -1; // -1: scheduler default.
  bool ShowHelp = false;
};

/// One manifest row and everything measured about it.
struct Request {
  std::string File;     ///< As written in the manifest.
  std::string Path;     ///< Resolved against the manifest directory.
  std::string Target;
  std::string Pipeline; ///< Empty: default flow pipeline for Target.
  unsigned Line = 0;

  bool Ok = false;
  core::CompileOutcome Outcome = core::CompileOutcome::Failed;
  double Ms = 0.0;
  std::string Error;
};

/// One --run execution: a manifest row whose file stem named an in-tree
/// workload, rebuilt as a full program and executed through the runtime.
struct RunRow {
  std::string Workload;
  std::string Target;
  bool Ok = false;
  bool Validated = false;
  uint64_t Launches = 0;
  double Makespan = 0.0;
  double Ms = 0.0;
  std::string Error;
};

void printHelp(std::ostream &OS) {
  OS << "usage: smlir-serve [options] <manifest>\n"
     << "       smlir-serve --dump-workloads <dir>\n"
     << "\n"
     << "Compiles every request in the manifest through the process-wide\n"
     << "compilation service, on the runtime scheduler's worker pool, and\n"
     << "reports how each request was served (miss = ran the pipeline;\n"
     << "memory-hit / rematerialized / disk-hit = cached tiers).\n"
     << "\n"
     << "Manifest lines: <program.mlir> <target> [pipeline]   (# comments)\n"
     << "Paths are relative to the manifest file.\n"
     << "\n"
     << "  --threads=<n>          Worker pool size (0 = compile inline on\n"
     << "                         the main thread; default:\n"
     << "                         $SMLIR_SCHEDULER_THREADS or min(4, cores),\n"
     << "                         raised to 1 so batches use the pool).\n"
     << "  --cache-dir=<dir>      Enable the disk cache tier at <dir>\n"
     << "                         (overrides $SMLIR_CACHE_DIR).\n"
     << "  --json                 Machine-readable report on stdout.\n"
     << "  --run                  After compiling, execute every manifest\n"
     << "                         row that names an in-tree workload\n"
     << "                         (kernel launches run on the worker pool).\n"
     << "  --metrics-out=<file>   Write the process metrics snapshot\n"
     << "                         (JSON) after the batch.\n"
     << "  --dump-workloads <dir> Write the in-tree benchmark workloads'\n"
     << "                         device modules to <dir> as .mlir files\n"
     << "                         plus a manifest.txt, then exit.\n"
     << "  --help                 Show this help.\n";
}

bool parseArgs(int Argc, char **Argv, Options &Opts, std::string &Error) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      Opts.ShowHelp = true;
    } else if (Arg == "--json") {
      Opts.JSON = true;
    } else if (Arg.rfind("--threads=", 0) == 0) {
      std::string Value(Arg.substr(strlen("--threads=")));
      char *End = nullptr;
      long N = std::strtol(Value.c_str(), &End, 10);
      if (!End || *End != '\0' || N < 0 || N > 1024) {
        Error = "--threads expects an integer in [0, 1024]";
        return false;
      }
      Opts.Threads = static_cast<int>(N);
    } else if (Arg.rfind("--cache-dir=", 0) == 0) {
      Opts.CacheDir = std::string(Arg.substr(strlen("--cache-dir=")));
      Opts.CacheDirSet = true;
    } else if (Arg.rfind("--metrics-out=", 0) == 0) {
      Opts.MetricsOut = std::string(Arg.substr(strlen("--metrics-out=")));
      if (Opts.MetricsOut.empty()) {
        Error = "--metrics-out expects a file path";
        return false;
      }
    } else if (Arg == "--run") {
      Opts.Run = true;
    } else if (Arg == "--dump-workloads") {
      if (I + 1 >= Argc) {
        Error = "--dump-workloads expects a directory";
        return false;
      }
      Opts.DumpDir = Argv[++I];
    } else if (Arg == "-" || Arg[0] != '-') {
      if (!Opts.ManifestFile.empty()) {
        Error = "multiple manifests: '" + Opts.ManifestFile + "' and '" +
                std::string(Arg) + "'";
        return false;
      }
      Opts.ManifestFile = std::string(Arg);
    } else {
      Error = "unknown option '" + std::string(Arg) + "'";
      return false;
    }
  }
  if (!Opts.ShowHelp && Opts.DumpDir.empty() && Opts.ManifestFile.empty()) {
    Error = "expected a manifest file (or --dump-workloads <dir>)";
    return false;
  }
  return true;
}

/// Workload display names ("2D convolution") to file stems
/// ("2d-convolution").
std::string sanitizeName(std::string_view Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name) {
    if ((C >= 'a' && C <= 'z') || (C >= '0' && C <= '9')) {
      Out += C;
    } else if (C >= 'A' && C <= 'Z') {
      Out += static_cast<char>(C - 'A' + 'a');
    } else if (!Out.empty() && Out.back() != '-') {
      Out += '-';
    }
  }
  while (!Out.empty() && Out.back() == '-')
    Out.pop_back();
  return Out.empty() ? "workload" : Out;
}

int dumpWorkloads(const std::string &Dir) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    std::cerr << "smlir-serve: cannot create '" << Dir
              << "': " << EC.message() << "\n";
    return 1;
  }

  std::string Error;
  const exec::TargetBackend *Default = exec::resolveTarget("", &Error);
  if (!Default) {
    std::cerr << "smlir-serve: " << Error << "\n";
    return 1;
  }

  std::ostringstream Manifest;
  Manifest << "# Generated by smlir-serve --dump-workloads: every in-tree\n"
           << "# benchmark workload, compiled for the process default "
              "target.\n";
  unsigned Written = 0;
  for (const workloads::Workload &W : workloads::getAllWorkloads()) {
    // Each workload builds in its own context; only the printed IR is
    // kept, so the contexts stay small and die immediately.
    MLIRContext Ctx;
    registerAllDialects(Ctx);
    frontend::SourceProgram Program = W.Build(Ctx);
    if (!Program.DeviceModule) {
      std::cerr << "smlir-serve: workload '" << W.Name
                << "' produced no device module; skipped\n";
      continue;
    }
    std::string IR = Program.DeviceModule.get()->str();
    if (IR.empty() || IR.back() != '\n')
      IR += '\n';
    std::string Stem = sanitizeName(W.Name);
    std::string Path = Dir + "/" + Stem + ".mlir";
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    if (!Out.good()) {
      std::cerr << "smlir-serve: cannot write '" << Path << "'\n";
      return 1;
    }
    Out << IR;
    Manifest << Stem << ".mlir " << Default->getMnemonic() << "\n";
    ++Written;
  }

  std::string ManifestPath = Dir + "/manifest.txt";
  std::ofstream Out(ManifestPath, std::ios::binary | std::ios::trunc);
  if (!Out.good()) {
    std::cerr << "smlir-serve: cannot write '" << ManifestPath << "'\n";
    return 1;
  }
  Out << Manifest.str();
  std::cerr << "smlir-serve: wrote " << Written << " workloads + manifest to "
            << Dir << "\n";
  return 0;
}

bool parseManifest(const std::string &Path, std::vector<Request> &Requests,
                   std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In.good()) {
    Error = "cannot open manifest '" + Path + "'";
    return false;
  }
  std::string BaseDir =
      std::filesystem::path(Path).parent_path().string();

  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    std::istringstream Fields(Line);
    Request Req;
    Req.Line = LineNo;
    if (!(Fields >> Req.File))
      continue; // Blank / comment-only line.
    if (!(Fields >> Req.Target)) {
      Error = "manifest line " + std::to_string(LineNo) +
              ": expected '<program.mlir> <target> [pipeline]'";
      return false;
    }
    // The rest of the line (if any) is the pipeline — pipelines contain
    // commas and parens but never spaces, so one field suffices; taking
    // the remainder keeps the error crisp if someone writes two.
    std::string Rest;
    std::getline(Fields, Rest);
    size_t Begin = Rest.find_first_not_of(" \t");
    if (Begin != std::string::npos) {
      size_t End = Rest.find_last_not_of(" \t\r");
      Req.Pipeline = Rest.substr(Begin, End - Begin + 1);
    }
    Req.Path = (BaseDir.empty() || Req.File.front() == '/')
                   ? Req.File
                   : BaseDir + "/" + Req.File;
    Requests.push_back(std::move(Req));
  }
  if (Requests.empty()) {
    Error = "manifest '" + Path + "' contains no requests";
    return false;
  }
  return true;
}

/// The --run phase: executes every successfully-compiled manifest row
/// whose file stem matches an in-tree workload (the stems
/// --dump-workloads writes). Programs run sequentially on this thread;
/// their kernel launches fan out across \p RunCtx's worker pool, so
/// traced runs show scheduler-task and VM-launch spans on the workers.
std::vector<RunRow> runWorkloads(const std::vector<Request> &Requests,
                                 rt::Context &RunCtx) {
  // Keep the workload list alive for the whole phase; ByStem stores
  // pointers into it.
  const std::vector<workloads::Workload> AllWorkloads =
      workloads::getAllWorkloads();
  std::map<std::string, const workloads::Workload *> ByStem;
  for (const workloads::Workload &W : AllWorkloads)
    ByStem.emplace(sanitizeName(W.Name), &W);

  std::vector<RunRow> Rows;
  MLIRContext IRCtx;
  registerAllDialects(IRCtx);
  // Programs own the buffers/submissions the runtime references; keep
  // them alive until the pool has drained (RunCtx outlives this scope's
  // queues — runProgram waits internally).
  std::deque<frontend::SourceProgram> Programs;
  for (const Request &Req : Requests) {
    if (!Req.Ok)
      continue;
    auto It = ByStem.find(std::filesystem::path(Req.File).stem().string());
    if (It == ByStem.end())
      continue;
    RunRow Row;
    Row.Workload = It->second->Name;
    Row.Target = Req.Target;
    auto Start = std::chrono::steady_clock::now();
    Programs.push_back(It->second->Build(IRCtx));
    frontend::SourceProgram &Program = Programs.back();
    core::CompilerOptions CompOpts;
    CompOpts.PipelineOverride = Req.Pipeline;
    core::Compiler Comp(CompOpts);
    std::string CompileError;
    std::unique_ptr<core::Executable> Exe =
        Comp.compileFor(Program, Req.Target, &CompileError);
    if (!Exe) {
      Row.Error = "compile: " + CompileError;
    } else {
      rt::RunResult Result = rt::runProgram(Program, *Exe, RunCtx, Req.Target);
      Row.Ok = Result.Success;
      Row.Validated = Result.Validated;
      Row.Launches = Result.Stats.NumLaunches;
      Row.Makespan = Result.Stats.Makespan;
      Row.Error = Result.Error;
    }
    Row.Ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
                 .count();
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string formatMs(double Ms) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", Ms);
  return Buf;
}

void printJSONReport(const std::vector<Request> &Requests,
                     const std::vector<RunRow> &Runs, double WallMs,
                     unsigned Threads) {
  core::CompileService::Stats S = core::CompileService::get().getStats();
  unsigned OkCount = 0;
  for (const Request &Req : Requests)
    OkCount += Req.Ok ? 1 : 0;
  double PerSec = WallMs > 0.0 ? 1000.0 * Requests.size() / WallMs : 0.0;

  std::cout << "{\n  \"requests\": [\n";
  for (size_t I = 0; I < Requests.size(); ++I) {
    const Request &Req = Requests[I];
    std::cout << "    {\"file\": \"" << jsonEscape(Req.File)
              << "\", \"target\": \"" << jsonEscape(Req.Target)
              << "\", \"pipeline\": \"" << jsonEscape(Req.Pipeline)
              << "\", \"outcome\": \""
              << core::stringifyOutcome(Req.Outcome) << "\", \"ms\": "
              << formatMs(Req.Ms) << ", \"ok\": "
              << (Req.Ok ? "true" : "false") << ", \"error\": \""
              << jsonEscape(Req.Error) << "\"}"
              << (I + 1 < Requests.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n";
  if (!Runs.empty()) {
    uint64_t RunLaunches = 0;
    std::cout << "  \"run\": [\n";
    for (size_t I = 0; I < Runs.size(); ++I) {
      const RunRow &Row = Runs[I];
      RunLaunches += Row.Launches;
      std::cout << "    {\"workload\": \"" << jsonEscape(Row.Workload)
                << "\", \"target\": \"" << jsonEscape(Row.Target)
                << "\", \"ok\": " << (Row.Ok ? "true" : "false")
                << ", \"validated\": " << (Row.Validated ? "true" : "false")
                << ", \"launches\": " << Row.Launches << ", \"ms\": "
                << formatMs(Row.Ms) << ", \"error\": \""
                << jsonEscape(Row.Error) << "\"}"
                << (I + 1 < Runs.size() ? "," : "") << "\n";
    }
    std::cout << "  ],\n"
              << "  \"run_aggregate\": {\"workloads\": " << Runs.size()
              << ", \"launches\": " << RunLaunches << "},\n";
  }
  std::cout << "  \"aggregate\": {\"requests\": " << Requests.size()
            << ", \"ok\": " << OkCount << ", \"failed\": "
            << (Requests.size() - OkCount) << ", \"wall_ms\": "
            << formatMs(WallMs) << ", \"requests_per_s\": "
            << formatMs(PerSec) << ", \"threads\": " << Threads << "},\n"
            << "  \"service\": {\"memory_hits\": " << S.MemoryHits
            << ", \"rematerialized\": " << S.Rematerialized
            << ", \"disk_hits\": " << S.DiskHits << ", \"disk_stores\": "
            << S.DiskStores << ", \"disk_invalid\": " << S.DiskInvalid
            << ", \"misses\": " << S.Misses << ", \"evictions\": "
            << S.Evictions << ", \"in_flight_waits\": " << S.InFlightWaits
            << ", \"max_concurrent_compiles\": " << S.MaxConcurrentCompiles
            << ", \"memory_entries\": " << S.MemoryEntries << "}\n"
            << "}\n";
}

void printTextReport(const std::vector<Request> &Requests,
                     const std::vector<RunRow> &Runs, double WallMs,
                     unsigned Threads) {
  size_t FileWidth = 4, TargetWidth = 6;
  for (const Request &Req : Requests) {
    FileWidth = std::max(FileWidth, Req.File.size());
    TargetWidth = std::max(TargetWidth, Req.Target.size());
  }

  unsigned OkCount = 0;
  uint64_t ByOutcome[5] = {0, 0, 0, 0, 0};
  for (const Request &Req : Requests) {
    OkCount += Req.Ok ? 1 : 0;
    ByOutcome[static_cast<int>(Req.Outcome)]++;
  }

  for (const Request &Req : Requests) {
    std::cout << "  " << Req.File
              << std::string(FileWidth - Req.File.size() + 2, ' ')
              << Req.Target
              << std::string(TargetWidth - Req.Target.size() + 2, ' ');
    std::string Outcome(core::stringifyOutcome(Req.Outcome));
    std::cout << Outcome << std::string(16 - Outcome.size(), ' ')
              << formatMs(Req.Ms) << " ms";
    if (!Req.Ok)
      std::cout << "  (" << Req.Error << ")";
    std::cout << "\n";
  }

  double PerSec = WallMs > 0.0 ? 1000.0 * Requests.size() / WallMs : 0.0;
  core::CompileService::Stats S = core::CompileService::get().getStats();
  std::cout << "\n"
            << Requests.size() << " requests (" << OkCount << " ok, "
            << (Requests.size() - OkCount) << " failed) in "
            << formatMs(WallMs) << " ms on " << Threads
            << (Threads == 1 ? " thread" : " threads") << " ("
            << formatMs(PerSec) << " req/s)\n"
            << "  served: " << ByOutcome[3] << " compiled, "
            << ByOutcome[0] << " memory hits, " << ByOutcome[1]
            << " rematerialized, " << ByOutcome[2] << " from disk\n"
            << "service counters (process-wide):\n"
            << "  memory hits: " << S.MemoryHits
            << "\n  rematerialized: " << S.Rematerialized
            << "\n  disk hits: " << S.DiskHits
            << "\n  disk stores: " << S.DiskStores
            << "\n  disk invalid: " << S.DiskInvalid
            << "\n  misses: " << S.Misses
            << "\n  in-flight waits: " << S.InFlightWaits
            << "\n  max concurrent compiles: " << S.MaxConcurrentCompiles
            << "\n  memory entries: " << S.MemoryEntries << "\n";

  if (!Runs.empty()) {
    unsigned RunOk = 0;
    uint64_t RunLaunches = 0;
    std::cout << "executed workloads (--run):\n";
    for (const RunRow &Row : Runs) {
      RunOk += Row.Ok ? 1 : 0;
      RunLaunches += Row.Launches;
      std::cout << "  " << Row.Workload << " [" << Row.Target << "]: "
                << (Row.Ok ? (Row.Validated ? "ok" : "ran (not validated)")
                           : "FAILED")
                << ", " << Row.Launches << " launches, " << formatMs(Row.Ms)
                << " ms";
      if (!Row.Error.empty())
        std::cout << "  (" << Row.Error << ")";
      std::cout << "\n";
    }
    std::cout << "  " << Runs.size() << " workloads (" << RunOk << " ok), "
              << RunLaunches << " kernel launches total\n";
  }
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  std::string Error;
  if (!parseArgs(Argc, Argv, Opts, Error)) {
    std::cerr << "smlir-serve: " << Error << "\n";
    printHelp(std::cerr);
    return 1;
  }
  if (Opts.ShowHelp) {
    printHelp(std::cout);
    return 0;
  }

  registerAllPasses();
  exec::registerAllTargets();

  if (!Opts.DumpDir.empty())
    return dumpWorkloads(Opts.DumpDir);

  if (Opts.CacheDirSet)
    core::CompileService::get().setDiskCacheDir(Opts.CacheDir);

  std::vector<Request> Requests;
  if (!parseManifest(Opts.ManifestFile, Requests, Error)) {
    std::cerr << "smlir-serve: " << Error << "\n";
    return 1;
  }

  // All programs parse into one shared context up front — the service
  // hands identical manifest rows the same materialized module, and a
  // parse failure is reported per-request without costing a worker.
  MLIRContext Ctx;
  registerAllDialects(Ctx);
  std::deque<frontend::SourceProgram> Programs;
  std::vector<frontend::SourceProgram *> ProgramOf(Requests.size(), nullptr);
  for (size_t I = 0; I < Requests.size(); ++I) {
    Request &Req = Requests[I];
    std::ifstream In(Req.Path, std::ios::binary);
    if (!In.good()) {
      Req.Error = "cannot open '" + Req.Path + "'";
      continue;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    OwningOpRef Module = parseSourceString(&Ctx, Buffer.str(), &Error);
    if (!Module) {
      Req.Error = "parse error: " + Error;
      continue;
    }
    if (verify(Module.get(), &Error).failed()) {
      Req.Error = "verification error: " + Error;
      continue;
    }
    Programs.emplace_back(&Ctx);
    Programs.back().DeviceModule = std::move(Module);
    ProgramOf[I] = &Programs.back();
  }

  unsigned Threads = Opts.Threads >= 0
                         ? static_cast<unsigned>(Opts.Threads)
                         : std::max(1u, rt::Scheduler::defaultThreadCount());

  auto BatchStart = std::chrono::steady_clock::now();
  {
    // The same worker pool queue submissions run on; compile requests
    // join the DAG as host tasks (no device, no simulated time). The
    // scope drains and joins the pool before the report reads Requests.
    rt::Scheduler Pool(Threads);
    for (size_t I = 0; I < Requests.size(); ++I) {
      Request &Req = Requests[I];
      frontend::SourceProgram *Program = ProgramOf[I];
      if (!Program)
        continue; // Parse-stage failure, already recorded.
      auto Node = std::make_shared<rt::TaskNode>();
      Node->KernelName = "compile:" + Req.File;
      Node->Done = rt::Event::makePending(Node->KernelName);
      Node->HostWork = [&Req, Program](std::string *) -> LogicalResult {
        core::CompilerOptions CompOpts;
        CompOpts.PipelineOverride = Req.Pipeline;
        core::Compiler Comp(CompOpts);
        std::string CompileError;
        auto Start = std::chrono::steady_clock::now();
        std::unique_ptr<core::Executable> Exe = Comp.compileFor(
            *Program, Req.Target, &CompileError, &Req.Outcome);
        Req.Ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
        Req.Ok = Exe != nullptr;
        if (!Req.Ok)
          Req.Error = CompileError;
        // Failures are per-request report rows, not batch failures.
        return success();
      };
      Pool.submit(std::move(Node));
    }
    Pool.waitAll();
  }
  // Execution phase: sequential on this thread, kernel launches on the
  // context's worker pool (same thread count as the compile phase).
  std::vector<RunRow> Runs;
  if (Opts.Run) {
    rt::Context RunCtx(Threads);
    Runs = runWorkloads(Requests, RunCtx);
  }
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - BatchStart)
                      .count();

  if (Opts.JSON)
    printJSONReport(Requests, Runs, WallMs, Threads);
  else
    printTextReport(Requests, Runs, WallMs, Threads);

  if (!Opts.MetricsOut.empty() &&
      !telemetry::writeMetricsFile(Opts.MetricsOut)) {
    std::cerr << "smlir-serve: cannot write metrics file '" << Opts.MetricsOut
              << "'\n";
    return 1;
  }

  unsigned Failed = 0;
  for (const Request &Req : Requests)
    Failed += Req.Ok ? 0 : 1;
  for (const RunRow &Row : Runs)
    Failed += Row.Ok ? 0 : 1;
  return Failed == 0 ? 0 : 2;
}
