#!/usr/bin/env bash
# Tier-1 verify: configure, build, run every ctest suite. Used locally and
# by CI (.github/workflows/ci.yml). Extra args are forwarded to ctest.
# SMLIR_CMAKE_ARGS adds configure-time flags (the CI sanitizer job passes
# -DCMAKE_CXX_FLAGS=-fsanitize=address,undefined through it).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

# shellcheck disable=SC2086 # SMLIR_CMAKE_ARGS is intentionally word-split.
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" ${SMLIR_CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"

# The same suite once more on the virtual-cpu target backend: tests pick
# their device/pipeline from SMLIR_DEFAULT_TARGET, so this sweeps every
# workload through the lowered scf/memref kernel form and the CPU cost
# model — both registered backends stay green on every PR.
SMLIR_DEFAULT_TARGET=virtual-cpu \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"

# And once with a single scheduler worker: every queue submission runs
# through the task graph on exactly one thread, the deterministic
# schedule the asynchronous-runtime guarantees are stated against (the
# two runs above already cover the pool default).
SMLIR_SCHEDULER_THREADS=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"

# And once forcing the tree-walking interpreter tier: the bytecode VM is
# the default executor for lowered kernels, so the three sweeps above run
# it everywhere — this sweep keeps the cross-checked reference
# interpreter green on the very same suite (SMLIR_EXEC_TIER selects the
# tier process-wide; see src/exec/Bytecode.h).
SMLIR_EXEC_TIER=interpreter \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"

# Smoke the standalone pipeline driver: every golden snapshot must be
# reproducible via `smlir-opt --pass-pipeline=<recorded pipeline>`, and
# --target must reproduce the per-target pipeline derivation.
BUILD_DIR="$BUILD_DIR" "$REPO_ROOT/scripts/smoke_smlir_opt.sh"

# Observability gate: a traced smlir-serve --run over the full workload
# manifest must emit a strict-JSON Chrome trace with compile / pass /
# scheduler / vm spans on >= 2 worker threads, and a metrics snapshot
# that agrees exactly with the run's own report counters.
BUILD_DIR="$BUILD_DIR" "$REPO_ROOT/scripts/check_trace.sh"
