#!/usr/bin/env bash
# Observability gate: one traced smlir-serve run over the full in-tree
# workload manifest must produce
#   - a strict-JSON Chrome trace (SMLIR_TRACE=<file>) containing
#     compile-service, pass, scheduler-task and VM-launch spans, with
#     scheduler/VM spans attributed to at least two distinct worker tids;
#   - a strict-JSON metrics snapshot (--metrics-out=<file>) whose
#     compile_service.* counters agree exactly with the service counters
#     in the run's own JSON report, and whose runtime.launches equals the
#     report's summed per-run queue launches.
# Validation uses python3's json module (stdlib only): an emitter bug
# that chrome://tracing would reject fails here first.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
SMLIR_SERVE="${SMLIR_SERVE:-$BUILD_DIR/tools/smlir-serve}"

if [[ ! -x "$SMLIR_SERVE" ]]; then
  echo "check_trace: $SMLIR_SERVE not found or not executable" >&2
  echo "(build first: cmake --build $BUILD_DIR --target smlir-serve)" >&2
  exit 1
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "check_trace: python3 unavailable; skipping trace validation" >&2
  exit 0
fi

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

"$SMLIR_SERVE" --dump-workloads "$WORKDIR/wl" >/dev/null

# An inherited cache directory would serve every compile from disk and
# starve the trace of real pipeline runs; trace the cold path.
env -u SMLIR_CACHE_DIR SMLIR_TRACE="$WORKDIR/trace.json" \
  "$SMLIR_SERVE" --threads=4 --run --json \
  --metrics-out="$WORKDIR/metrics.json" \
  "$WORKDIR/wl/manifest.txt" > "$WORKDIR/report.json"

# Strict JSON: json.tool re-parses each artifact with the stdlib parser.
python3 -m json.tool "$WORKDIR/trace.json" >/dev/null
python3 -m json.tool "$WORKDIR/metrics.json" >/dev/null
python3 -m json.tool "$WORKDIR/report.json" >/dev/null

python3 - "$WORKDIR/trace.json" "$WORKDIR/metrics.json" \
    "$WORKDIR/report.json" <<'EOF'
import json
import sys

trace_path, metrics_path, report_path = sys.argv[1:4]
trace = json.load(open(trace_path))
metrics = json.load(open(metrics_path))
report = json.load(open(report_path))

events = trace["traceEvents"]
assert events, "trace has no events"

spans = [e for e in events if e.get("ph") == "X"]
cats = {e.get("cat", "") for e in spans}
names = {e.get("name", "") for e in spans}
for cat in ("compile", "pass", "scheduler", "vm"):
    assert cat in cats, f"trace is missing span category '{cat}'"
for name in ("compile.request", "pass.pipeline", "vm.launch"):
    assert name in names, f"trace is missing span '{name}'"

for cat in ("scheduler", "vm"):
    tids = {e["tid"] for e in spans if e.get("cat") == cat}
    assert len(tids) >= 2, (
        f"'{cat}' spans on {len(tids)} tid(s); expected >= 2 workers")

# Worker threads are named in the trace metadata.
thread_names = {
    e["args"]["name"]
    for e in events
    if e.get("ph") == "M" and e.get("name") == "thread_name"
}
assert any(n.startswith("smlir-worker-") for n in thread_names), (
    f"no named worker threads in {sorted(thread_names)}")

# Metrics must agree exactly with the run's own report: the service
# counters (one canonical storage location, read through the registry
# collector) and the summed per-queue launch counts.
service = report["service"]
for key, want in service.items():
    got = metrics.get(f"compile_service.{key}")
    assert got == want, (
        f"compile_service.{key}: metrics say {got}, report says {want}")

run_launches = report["run_aggregate"]["launches"]
assert metrics.get("runtime.launches") == run_launches, (
    f"runtime.launches: metrics say {metrics.get('runtime.launches')}, "
    f"report says {run_launches}")

assert report["run_aggregate"]["workloads"] > 0, "no workloads executed"
failed = [r["workload"] for r in report["run"] if not r["ok"]]
assert not failed, f"workloads failed under tracing: {failed}"

print(f"check_trace: OK — {len(spans)} spans, "
      f"{len(metrics)} metrics, "
      f"{report['run_aggregate']['workloads']} workloads, "
      f"{run_launches} launches")
EOF
