#!/usr/bin/env bash
# Measures the compilation service's two cache tiers on the full workload
# sweep and writes BENCH_compile.json (or $1):
#
#   - per-workload cold / warm-memory / warm-disk compile latency
#     (bench/compile_cache.cpp; the binary itself enforces that the
#     warm-disk pass is served entirely from the cache),
#   - one smlir-serve whole-manifest throughput row: the 38-workload
#     manifest served cold and then warm against a shared cache
#     directory, with the aggregate disk-hit count asserted > 0 — the
#     same cross-process persistence property CI gates on.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
OUT="${1:-$REPO_ROOT/BENCH_compile.json}"

cmake --build "$BUILD_DIR" -j "$JOBS" --target compile_cache smlir-serve

BENCH="$BUILD_DIR/bench/compile_cache"
SERVE="$BUILD_DIR/tools/smlir-serve"
for BIN in "$BENCH" "$SERVE"; do
  if [ ! -x "$BIN" ]; then
    echo "bench_compile.sh: binary not found or not executable: $BIN" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Tier latencies (the binary exits nonzero if the warm-disk pass ever
# falls back to the pass pipeline).
"$BENCH" "$WORK/bench-cache" > "$WORK/tiers.json"

# Batch throughput: dump the workload manifest once, serve it twice
# against one cache directory — a cold process and a warm one.
"$SERVE" --dump-workloads "$WORK/wl" 2> /dev/null
"$SERVE" --json --cache-dir="$WORK/serve-cache" "$WORK/wl/manifest.txt" \
  > "$WORK/serve-cold.json"
"$SERVE" --json --cache-dir="$WORK/serve-cache" "$WORK/wl/manifest.txt" \
  > "$WORK/serve-warm.json"

python3 - "$WORK/tiers.json" "$WORK/serve-cold.json" \
  "$WORK/serve-warm.json" "$OUT" <<'EOF'
import json, sys

tiers_path, cold_path, warm_path, out_path = sys.argv[1:5]
with open(tiers_path) as f:
    report = json.load(f)
with open(cold_path) as f:
    cold = json.load(f)
with open(warm_path) as f:
    warm = json.load(f)

# The persistence property: the second (warm) process must be served
# from the disk tier, not recompile.
warm_disk_hits = warm["service"]["disk_hits"]
warm_misses = warm["service"]["misses"]
if warm_disk_hits == 0:
    sys.exit("bench_compile.sh: warm smlir-serve run had zero disk hits")
if any(not r["ok"] for r in cold["requests"] + warm["requests"]):
    sys.exit("bench_compile.sh: a serve request failed")

report["serve"] = {
    "requests": cold["aggregate"]["requests"],
    "cold_wall_ms": cold["aggregate"]["wall_ms"],
    "cold_requests_per_s": cold["aggregate"]["requests_per_s"],
    "warm_wall_ms": warm["aggregate"]["wall_ms"],
    "warm_requests_per_s": warm["aggregate"]["requests_per_s"],
    "warm_disk_hits": warm_disk_hits,
    "warm_misses": warm_misses,
}

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

t = report["totals"]
print(f"compile tiers over {t['workloads']} workloads: "
      f"cold {float(t['cold_ms']):.1f} ms, "
      f"warm-memory {float(t['warm_memory_ms']):.1f} ms, "
      f"warm-disk {float(t['warm_disk_ms']):.1f} ms")
s = report["serve"]
print(f"smlir-serve manifest: cold {s['cold_wall_ms']} ms "
      f"({s['cold_requests_per_s']} req/s), warm {s['warm_wall_ms']} ms "
      f"({s['warm_requests_per_s']} req/s), "
      f"{s['warm_disk_hits']} disk hits")
print(f"wrote {out_path}")
EOF
