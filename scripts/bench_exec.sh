#!/usr/bin/env bash
# Measures per-kernel execution time of the execution tiers via the
# BM_ExecTier_* microbenchmarks and writes the google-benchmark JSON
# report to BENCH_exec.json (or $1).
#
# Five variants run per kernel family (matmul, saxpy, stencil):
#   *_Interpreter      - the tree-walking reference interpreter
#   *_BytecodeBase     - the VM with fusion off, portable switch dispatch
#   *_BytecodeNoElide  - tuned dispatch, but annotate-inbounds proofs
#                        refused (every access re-checks bounds)
#   *_Bytecode         - the tuned default (threaded + fused + elision)
#   *_BytecodeTraced   - the tuned default with telemetry tracing on
#                        (one vm.launch span recorded per iteration)
# and the script prints a one-line speedup summary per family, the
# bounds-check elision win (NoElide / tuned) and the tracing overhead
# (Traced / tuned) per family. The untraced variants double as the
# disabled-path cost check: tracing off is one atomic load per site, so
# *_Bytecode must not move when the telemetry layer changes.
#
# To regenerate the opcode/pair frequency profile that justifies the
# fused opcode set (see fuseSuperinstructions in src/exec/Bytecode.cpp):
#   SMLIR_BC_PROFILE=1 SMLIR_BC_FUSION=0 build/bench/micro_infra \
#     --benchmark_filter='BM_ExecTier.*_Bytecode$' --benchmark_min_time=0.01
# The unfused pair counts print to stderr at process exit.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
OUT="${1:-$REPO_ROOT/BENCH_exec.json}"
REPS="${REPS:-5}"

cmake --build "$BUILD_DIR" -j "$JOBS" --target micro_infra

BENCH="$BUILD_DIR/bench/micro_infra"
if [ ! -x "$BENCH" ]; then
  echo "bench_exec.sh: benchmark binary not found or not executable: $BENCH" >&2
  exit 1
fi

# Random interleaving shuffles the repetition order across variants so a
# frequency ramp or noisy neighbor hits every variant equally — without
# it, the few-percent bounds-check-elision delta drowns in run-order
# bias on shared machines. A short warmup absorbs the first-launch cost
# (bytecode translation, allocator growth) outside the measurement.
"$BENCH" \
  --benchmark_filter='BM_ExecTier' \
  --benchmark_repetitions="$REPS" \
  --benchmark_enable_random_interleaving=true \
  --benchmark_min_warmup_time=0.2 \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

# Every family must be present in the report with all three variants —
# a silently skipped benchmark (compile failure, kernel outside bytecode
# coverage) must fail the run, not produce a hollow JSON.
python3 - "$OUT" <<'EOF'
import json, math, sys

path = sys.argv[1]
with open(path) as f:
    report = json.load(f)

medians = {}
for entry in report.get("benchmarks", []):
    if entry.get("aggregate_name") == "median":
        medians[entry["run_name"]] = entry["real_time"]

families = ["MatMul", "Saxpy", "Stencil"]
variants = ["Interpreter", "BytecodeBase", "BytecodeNoElide", "Bytecode",
            "BytecodeTraced"]
missing = [
    f"BM_ExecTier_{fam}_{var}"
    for fam in families
    for var in variants
    if f"BM_ExecTier_{fam}_{var}" not in medians
]
if missing:
    print(f"bench_exec.sh: missing from {path}: {', '.join(missing)}",
          file=sys.stderr)
    sys.exit(1)

ratios = []
elisions = []
traces = []
for fam in families:
    interp = medians[f"BM_ExecTier_{fam}_Interpreter"]
    base = medians[f"BM_ExecTier_{fam}_BytecodeBase"]
    checked = medians[f"BM_ExecTier_{fam}_BytecodeNoElide"]
    tuned = medians[f"BM_ExecTier_{fam}_Bytecode"]
    traced = medians[f"BM_ExecTier_{fam}_BytecodeTraced"]
    ratios.append(base / tuned)
    elisions.append(checked / tuned)
    traces.append(traced / tuned)
    print(f"{fam.lower()}: interpreter {interp:.0f}us, "
          f"bytecode(base) {base:.0f}us, bytecode(no-elide) "
          f"{checked:.0f}us, bytecode(threaded+fused+elide) "
          f"{tuned:.0f}us, bytecode(traced) {traced:.0f}us -> "
          f"{interp / tuned:.1f}x vs interpreter, "
          f"{base / tuned:.2f}x vs base VM, "
          f"{checked / tuned:.2f}x from bounds-check elision, "
          f"{(traced / tuned - 1) * 100:+.1f}% tracing overhead")
geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
print(f"geomean threaded+fused speedup vs base VM: {geomean:.2f}x")
egeomean = math.exp(sum(math.log(r) for r in elisions) / len(elisions))
print(f"geomean proven-in-bounds elision speedup: {egeomean:.2f}x")
tgeomean = math.exp(sum(math.log(r) for r in traces) / len(traces))
print(f"geomean tracing-enabled overhead: {(tgeomean - 1) * 100:+.1f}%")
EOF

echo "wrote $OUT"
