#!/usr/bin/env bash
# Measures per-kernel execution time of both execution tiers (bytecode VM
# vs tree-walking interpreter) via the BM_ExecTier_* microbenchmarks and
# writes the google-benchmark JSON report to BENCH_exec.json (or $1).
# The bytecode tier is expected to hold a >=5x advantage on every kernel;
# compare the *_Interpreter and *_Bytecode real_time entries.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
OUT="${1:-$REPO_ROOT/BENCH_exec.json}"

cmake --build "$BUILD_DIR" -j "$JOBS" --target micro_infra

"$BUILD_DIR/bench/micro_infra" \
  --benchmark_filter='BM_ExecTier' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

echo "wrote $OUT"
