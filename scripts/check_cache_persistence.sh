#!/usr/bin/env bash
# Cross-process cache-persistence gate, run by CI after the tier-1 verify
# (both in the plain build and under ASan+UBSan): dump the workload
# manifest, serve it from two separate smlir-serve processes sharing one
# cache directory, and fail unless the second process is served from the
# disk tier — nonzero disk hits, zero pipeline misses, zero invalid
# entries. This is the property that makes $SMLIR_CACHE_DIR useful at
# all: artifacts written by one process must be loadable by the next.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

cmake --build "$BUILD_DIR" -j "$JOBS" --target smlir-serve
SERVE="$BUILD_DIR/tools/smlir-serve"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$SERVE" --dump-workloads "$WORK/wl" 2> /dev/null

# First process: cold — every request compiles and stores its artifact.
"$SERVE" --cache-dir="$WORK/cache" "$WORK/wl/manifest.txt" \
  > "$WORK/cold.txt"
# Second process: must come back warm off the same directory.
"$SERVE" --cache-dir="$WORK/cache" "$WORK/wl/manifest.txt" \
  > "$WORK/warm.txt"

counter() { # counter <file> <label>
  sed -n "s/^  $2: \([0-9][0-9]*\)\$/\1/p" "$1"
}

COLD_STORES="$(counter "$WORK/cold.txt" "disk stores")"
WARM_HITS="$(counter "$WORK/warm.txt" "disk hits")"
WARM_MISSES="$(counter "$WORK/warm.txt" "misses")"
WARM_INVALID="$(counter "$WORK/warm.txt" "disk invalid")"

echo "cache persistence: ${COLD_STORES:-0} stored cold," \
  "${WARM_HITS:-0} disk hits / ${WARM_MISSES:-?} misses /" \
  "${WARM_INVALID:-?} invalid warm"

if [ -z "$COLD_STORES" ] || [ "$COLD_STORES" -eq 0 ]; then
  echo "check_cache_persistence.sh: cold run stored nothing to disk" >&2
  exit 1
fi
if [ -z "$WARM_HITS" ] || [ "$WARM_HITS" -eq 0 ]; then
  echo "check_cache_persistence.sh: warm run had zero disk hits" >&2
  tail -20 "$WORK/warm.txt" >&2
  exit 1
fi
if [ "$WARM_MISSES" != 0 ] || [ "$WARM_INVALID" != 0 ]; then
  echo "check_cache_persistence.sh: warm run fell back to the pipeline" \
    "(misses=$WARM_MISSES, invalid=$WARM_INVALID)" >&2
  tail -20 "$WORK/warm.txt" >&2
  exit 1
fi
