#!/usr/bin/env bash
# Replays golden-IR snapshots through smlir-opt: extracts each snapshot's
# "before" section plus the pipeline recorded in its header, runs
#   smlir-opt --pass-pipeline=<recorded pipeline> before.mlir
# and diffs stdout byte-for-byte against the "after" section. Proves the
# standalone driver reproduces exactly what the in-process pass manager
# produced. With no arguments, checks every snapshot under
# tests/golden/snapshots; otherwise checks the given snapshot files.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
SMLIR_OPT="${SMLIR_OPT:-$BUILD_DIR/tools/smlir-opt}"

if [[ ! -x "$SMLIR_OPT" ]]; then
  echo "smoke_smlir_opt: $SMLIR_OPT not found or not executable" >&2
  echo "(build first: cmake --build $BUILD_DIR --target smlir-opt)" >&2
  exit 1
fi

snapshots=("$@")
if [[ ${#snapshots[@]} -eq 0 ]]; then
  snapshots=("$REPO_ROOT"/tests/golden/snapshots/*.mlir.expected)
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

for snapshot in "${snapshots[@]}"; do
  pipeline="$(sed -n 's|^// pipeline: ||p' "$snapshot")"
  awk '/^\/\/ ----- before -----$/{flag=1;next}/^\/\/ ----- after -----$/{flag=0}flag' \
    "$snapshot" > "$tmp/before.mlir"
  awk '/^\/\/ ----- after -----$/{flag=1;next}flag' \
    "$snapshot" > "$tmp/expected.mlir"
  "$SMLIR_OPT" --pass-pipeline="$pipeline" "$tmp/before.mlir" \
    > "$tmp/actual.mlir"
  if ! diff -u "$tmp/expected.mlir" "$tmp/actual.mlir"; then
    echo "smoke_smlir_opt: MISMATCH for $(basename "$snapshot")" \
         "(pipeline '$pipeline')" >&2
    exit 1
  fi
  echo "smlir-opt reproduced $(basename "$snapshot") (pipeline '$pipeline')"
done
