#!/usr/bin/env bash
# Replays golden-IR snapshots through smlir-opt: extracts each snapshot's
# "before" section plus the pipeline recorded in its header, runs
#   smlir-opt --pass-pipeline=<recorded pipeline> before.mlir
# and diffs stdout byte-for-byte against the "after" section. Proves the
# standalone driver reproduces exactly what the in-process pass manager
# produced. With no arguments, checks every snapshot under
# tests/golden/snapshots; otherwise checks the given snapshot files.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
SMLIR_OPT="${SMLIR_OPT:-$BUILD_DIR/tools/smlir-opt}"

if [[ ! -x "$SMLIR_OPT" ]]; then
  echo "smoke_smlir_opt: $SMLIR_OPT not found or not executable" >&2
  echo "(build first: cmake --build $BUILD_DIR --target smlir-opt)" >&2
  exit 1
fi

# The virtual-cpu lowering suffix, parsed from the registry listing (the
# single source of truth) so this script cannot drift from
# exec::kLoweredFormPipeline and silently skip the per-target checks.
cpu_suffix="$("$SMLIR_OPT" --list-targets \
  | grep -A1 '^  virtual-cpu - ' \
  | sed -n 's/.*pipeline suffix: "\(.*\)"$/\1/p' || true)"
if [[ -z "$cpu_suffix" ]]; then
  echo "smoke_smlir_opt: could not parse virtual-cpu pipeline suffix from" \
       "--list-targets" >&2
  exit 1
fi

snapshots=("$@")
if [[ ${#snapshots[@]} -eq 0 ]]; then
  snapshots=("$REPO_ROOT"/tests/golden/snapshots/*.mlir.expected)
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

for snapshot in "${snapshots[@]}"; do
  pipeline="$(sed -n 's|^// pipeline: ||p' "$snapshot")"
  awk '/^\/\/ ----- before -----$/{flag=1;next}/^\/\/ ----- after -----$/{flag=0}flag' \
    "$snapshot" > "$tmp/before.mlir"
  awk '/^\/\/ ----- after -----$/{flag=1;next}flag' \
    "$snapshot" > "$tmp/expected.mlir"
  "$SMLIR_OPT" --pass-pipeline="$pipeline" "$tmp/before.mlir" \
    > "$tmp/actual.mlir"
  if ! diff -u "$tmp/expected.mlir" "$tmp/actual.mlir"; then
    echo "smoke_smlir_opt: MISMATCH for $(basename "$snapshot")" \
         "(pipeline '$pipeline')" >&2
    exit 1
  fi
  echo "smlir-opt reproduced $(basename "$snapshot") (pipeline '$pipeline')"

  # Target-backend smoke. virtual-gpu has no pipeline suffix, so
  # --target=virtual-gpu must reproduce the snapshot byte-for-byte.
  "$SMLIR_OPT" --target=virtual-gpu --pass-pipeline="$pipeline" \
    "$tmp/before.mlir" > "$tmp/actual_gpu.mlir"
  if ! diff -u "$tmp/expected.mlir" "$tmp/actual_gpu.mlir"; then
    echo "smoke_smlir_opt: --target=virtual-gpu CHANGED OUTPUT for" \
         "$(basename "$snapshot")" >&2
    exit 1
  fi

  # virtual-cpu appends the lowering suffix: when a snapshot's recorded
  # pipeline ends with that suffix, running the *base* pipeline with
  # --target=virtual-cpu must reproduce the same lowered output.
  base="${pipeline%",$cpu_suffix"}"
  if [[ "$base" != "$pipeline" ]]; then
    "$SMLIR_OPT" --target=virtual-cpu --pass-pipeline="$base" \
      "$tmp/before.mlir" > "$tmp/actual_cpu.mlir"
    if ! diff -u "$tmp/expected.mlir" "$tmp/actual_cpu.mlir"; then
      echo "smoke_smlir_opt: --target=virtual-cpu MISMATCH for" \
           "$(basename "$snapshot") (base pipeline '$base')" >&2
      exit 1
    fi
    # And the full recorded pipeline with --target=virtual-cpu must not
    # lower twice: the driver dedupes a trailing suffix, exactly like
    # Compiler::getPipeline(Options, Target).
    "$SMLIR_OPT" --target=virtual-cpu --pass-pipeline="$pipeline" \
      "$tmp/before.mlir" > "$tmp/actual_cpu_full.mlir"
    if ! diff -u "$tmp/expected.mlir" "$tmp/actual_cpu_full.mlir"; then
      echo "smoke_smlir_opt: --target=virtual-cpu DOUBLE-LOWERED" \
           "$(basename "$snapshot")" >&2
      exit 1
    fi
    echo "smlir-opt --target=virtual-cpu reproduced" \
         "$(basename "$snapshot") from base and full pipelines"
  fi
done

# Bytecode-disassembly snapshots: replaying the recorded lowered module
# through `smlir-opt --emit-bytecode` must reproduce the snapshot's
# bytecode section byte-for-byte — the CLI, the translator (with
# superinstruction fusion, pinned on to match how the snapshots are
# generated) and the golden test all agree. Skipped when specific
# .mlir.expected snapshots were requested on the command line.
if [[ $# -eq 0 ]]; then
  bc_snapshots=("$REPO_ROOT"/tests/golden/snapshots/*.bc.expected)
  if [[ ! -e "${bc_snapshots[0]}" ]]; then
    echo "smoke_smlir_opt: no .bc.expected snapshots found" >&2
    exit 1
  fi
  for snapshot in "${bc_snapshots[@]}"; do
    awk '/^\/\/ ----- module -----$/{flag=1;next}/^\/\/ ----- bytecode -----$/{flag=0}flag' \
      "$snapshot" > "$tmp/module.mlir"
    awk '/^\/\/ ----- bytecode -----$/{flag=1;next}flag' \
      "$snapshot" > "$tmp/expected.bc"
    SMLIR_BC_FUSION=1 "$SMLIR_OPT" --emit-bytecode "$tmp/module.mlir" \
      > "$tmp/actual.bc"
    if ! diff -u "$tmp/expected.bc" "$tmp/actual.bc"; then
      echo "smoke_smlir_opt: BYTECODE MISMATCH for $(basename "$snapshot")" >&2
      exit 1
    fi
    # Named-kernel selection prints exactly that one kernel.
    kernel="$(sed -n 's/^kernel @\([^ ]*\).*/\1/p' "$tmp/expected.bc" | head -n1)"
    if [[ -n "$kernel" ]]; then
      SMLIR_BC_FUSION=1 "$SMLIR_OPT" --emit-bytecode="$kernel" \
        "$tmp/module.mlir" > "$tmp/actual_one.bc"
      if [[ "$(grep -c '^kernel @' "$tmp/actual_one.bc")" != 1 ]] ||
         ! grep -q "^kernel @$kernel " "$tmp/actual_one.bc"; then
        echo "smoke_smlir_opt: --emit-bytecode=$kernel selection failed for" \
             "$(basename "$snapshot")" >&2
        exit 1
      fi
    fi
    echo "smlir-opt --emit-bytecode reproduced $(basename "$snapshot")"
  done
fi

# Lint gate: a kernel with a provably out-of-bounds store must exit 2
# with the rule id on stderr; removing the violation must exit 0.
cat > "$tmp/lint_bad.mlir" <<'EOF'
module {
  module @kernels {
    func.func @bad(%arg0: memref<15xindex, 5>, %arg1: memref<?xf32>) attributes {sycl.kernel, sycl.lowered, sycl.arg_ranges = [[1 : index, 8 : index]]} {
      %0 = "arith.constant"() {value = 9 : index} : () -> (index)
      %1 = "arith.constant"() {value = 1.0 : f32} : () -> (f32)
      "memref.store"(%1, %arg1, %0) : (f32, memref<?xf32>, index) -> ()
      "func.return"() : () -> ()
    }
  }
}
EOF
if "$SMLIR_OPT" --lint "$tmp/lint_bad.mlir" >/dev/null 2>"$tmp/lint_err.txt"; then
  echo "smoke_smlir_opt: --lint did not fail on an out-of-bounds store" >&2
  exit 1
fi
rc=0; "$SMLIR_OPT" --lint "$tmp/lint_bad.mlir" >/dev/null 2>/dev/null || rc=$?
if [[ "$rc" != 2 ]]; then
  echo "smoke_smlir_opt: --lint exited $rc on findings (expected 2)" >&2
  exit 1
fi
grep -q "\[oob-access\]" "$tmp/lint_err.txt" || {
  echo "smoke_smlir_opt: --lint stderr is missing the oob-access rule id" >&2
  exit 1
}
sed 's/value = 9/value = 7/' "$tmp/lint_bad.mlir" > "$tmp/lint_ok.mlir"
if ! "$SMLIR_OPT" --lint "$tmp/lint_ok.mlir" >/dev/null 2>&1; then
  echo "smoke_smlir_opt: --lint failed on an in-bounds kernel" >&2
  exit 1
fi
echo "smlir-opt --lint gate smoke passed"

# The registry listing must expose both built-in backends.
for target in virtual-gpu virtual-cpu; do
  if ! "$SMLIR_OPT" --list-targets | grep -q "^  $target - "; then
    echo "smoke_smlir_opt: --list-targets does not list '$target'" >&2
    exit 1
  fi
done
if "$SMLIR_OPT" --target=no-such-target --pass-pipeline=dce \
     </dev/null >/dev/null 2>"$tmp/err.txt"; then
  echo "smoke_smlir_opt: --target=no-such-target unexpectedly succeeded" >&2
  exit 1
fi
grep -q "unknown target" "$tmp/err.txt" || {
  echo "smoke_smlir_opt: missing 'unknown target' diagnostic" >&2
  exit 1
}
echo "smlir-opt --list-targets / --target smoke passed"
